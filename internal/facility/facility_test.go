package facility

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestSubmitRunsJob(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "perlmutter")
	c.AddPartition("cpu", 4, map[string]int{"realtime": 10, "regular": 0})
	var job *Job
	e.Go("u", func(p *sim.Proc) {
		var err error
		job, err = c.Submit(nil, p, JobSpec{
			Name: "recon", Partition: "cpu", QOS: "realtime", Nodes: 1,
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(15 * time.Minute); return nil },
		})
		if err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if job.State != Completed {
		t.Fatalf("state = %v", job.State)
	}
	if job.QueueWait() != 0 {
		t.Fatalf("empty cluster queue wait = %v", job.QueueWait())
	}
	if job.Walltime() != 15*time.Minute {
		t.Fatalf("walltime = %v", job.Walltime())
	}
}

func TestJobFailure(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 1, nil)
	e.Go("u", func(p *sim.Proc) {
		job, err := c.Submit(nil, p, JobSpec{
			Name: "bad", Partition: "cpu",
			Run: func(_ context.Context, p *sim.Proc) error { return errors.New("segfault") },
		})
		if err == nil || job.State != JobFailed || job.Err != "segfault" {
			t.Errorf("job = %+v err = %v", job, err)
		}
	})
	e.Run()
}

func TestUnknownPartitionAndOversize(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 2, nil)
	e.Go("u", func(p *sim.Proc) {
		if _, err := c.Submit(nil, p, JobSpec{Partition: "gpu"}); err == nil {
			t.Error("unknown partition should error")
		}
		if _, err := c.Submit(nil, p, JobSpec{Partition: "cpu", Nodes: 3}); err == nil {
			t.Error("oversized job should error")
		}
	})
	e.Run()
}

func TestFIFOQueueing(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 1, nil)
	var order []string
	submit := func(name string, delay time.Duration) {
		e.Go(name, func(p *sim.Proc) {
			p.Sleep(delay)
			c.Submit(nil, p, JobSpec{
				Name: name, Partition: "cpu",
				Run: func(_ context.Context, p *sim.Proc) error {
					order = append(order, name)
					p.Sleep(10 * time.Minute)
					return nil
				},
			})
		})
	}
	submit("first", 0)
	submit("second", time.Second)
	submit("third", 2*time.Second)
	e.Run()
	if order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("order = %v", order)
	}
}

func TestRealtimeQOSJumpsQueue(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 1, map[string]int{"realtime": 10, "regular": 0})
	var order []string
	submit := func(name, qos string, delay time.Duration) {
		e.Go(name, func(p *sim.Proc) {
			p.Sleep(delay)
			c.Submit(nil, p, JobSpec{
				Name: name, Partition: "cpu", QOS: qos,
				Run: func(_ context.Context, p *sim.Proc) error {
					order = append(order, name)
					p.Sleep(10 * time.Minute)
					return nil
				},
			})
		})
	}
	submit("running", "regular", 0)
	submit("waiting-reg", "regular", time.Second)
	submit("rt", "realtime", 2*time.Second)
	e.Run()
	// The realtime job arrived last but must run before the waiting
	// regular job (it cannot preempt the running one).
	if order[1] != "rt" {
		t.Fatalf("order = %v; realtime should jump the queue", order)
	}
}

func TestQueueWaitUnderLoad(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 2, map[string]int{"realtime": 10})
	// Fill both nodes with hour-long background jobs, then submit.
	for i := 0; i < 2; i++ {
		e.Go("bg", func(p *sim.Proc) {
			c.Submit(nil, p, JobSpec{Name: "bg", Partition: "cpu",
				Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(time.Hour); return nil }})
		})
	}
	var wait time.Duration
	e.Go("user", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		job, _ := c.Submit(nil, p, JobSpec{Name: "rt", Partition: "cpu", QOS: "realtime",
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(time.Minute); return nil }})
		wait = job.QueueWait()
	})
	e.Run()
	if wait != 59*time.Minute {
		t.Fatalf("queue wait %v, want 59m (blocked until a bg job ends)", wait)
	}
	if c.QueueDepth("cpu") != 0 {
		t.Fatal("queue not drained")
	}
	if c.QueueDepth("nonexistent") != 0 {
		t.Fatal("unknown partition should report empty queue")
	}
}

func TestBackgroundLoadKeepsNodesBusy(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 8, nil)
	remaining := 6
	c.BackgroundLoad("cpu", "regular", 4, 2, func() time.Duration {
		if remaining == 0 {
			return 0
		}
		remaining--
		return 30 * time.Minute
	})
	e.Run()
	jobs := c.Jobs()
	if len(jobs) != 6 {
		t.Fatalf("background jobs = %d, want 6", len(jobs))
	}
	for _, j := range jobs {
		if j.State != Completed || j.Nodes != 2 {
			t.Fatalf("bad background job %+v", j)
		}
	}
}

func TestPilotColdThenWarm(t *testing.T) {
	e := sim.New(epoch)
	pe := NewPilotEndpoint(e, "polaris", 2, 3*time.Minute)
	durations := make([]time.Duration, 0, 3)
	e.Go("u", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			t0 := p.Now()
			err := pe.Execute(nil, p, func(_ context.Context, p *sim.Proc) error {
				p.Sleep(10 * time.Minute)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
			durations = append(durations, p.Now().Sub(t0))
		}
	})
	e.Run()
	if durations[0] != 13*time.Minute {
		t.Errorf("first execution %v, want cold start + 10m", durations[0])
	}
	if durations[1] != 13*time.Minute {
		t.Errorf("second execution %v (second worker cold start)", durations[1])
	}
	if durations[2] != 10*time.Minute {
		t.Errorf("third execution %v, want warm 10m", durations[2])
	}
	if pe.ColdStarts != 2 || pe.Executions != 3 {
		t.Errorf("stats: cold=%d exec=%d", pe.ColdStarts, pe.Executions)
	}
}

func TestPilotErrorPropagates(t *testing.T) {
	e := sim.New(epoch)
	pe := NewPilotEndpoint(e, "polaris", 1, 0)
	e.Go("u", func(p *sim.Proc) {
		if err := pe.Execute(nil, p, func(_ context.Context, p *sim.Proc) error { return errors.New("oom") }); err == nil {
			t.Error("error should propagate")
		}
	})
	e.Run()
}

func TestSFAPISubmitWaitCancel(t *testing.T) {
	api := NewSFAPI("secret")
	ran := make(chan struct{})
	api.Register("recon", func(ctx context.Context, args map[string]string) error {
		close(ran)
		return nil
	})
	blocked := make(chan struct{})
	api.Register("hang", func(ctx context.Context, args map[string]string) error {
		close(blocked)
		<-ctx.Done()
		return ctx.Err()
	})

	job, err := api.Submit("recon", map[string]string{"scan": "s1"})
	if err != nil {
		t.Fatal(err)
	}
	<-ran
	final, err := api.Wait(job.ID)
	if err != nil || final.State != Completed {
		t.Fatalf("final = %+v err=%v", final, err)
	}

	h, err := api.Submit("hang", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	if err := api.Cancel(h.ID); err != nil {
		t.Fatal(err)
	}
	final, _ = api.Wait(h.ID)
	if final.State != Cancelled {
		t.Fatalf("cancelled job state = %v", final.State)
	}

	if _, err := api.Submit("nope", nil); err == nil {
		t.Fatal("unknown command should error")
	}
	if _, err := api.Job(9999); err == nil {
		t.Fatal("unknown job should error")
	}
	if err := api.Cancel(9999); err == nil {
		t.Fatal("cancel unknown job should error")
	}
	if _, err := api.Wait(9999); err == nil {
		t.Fatal("wait unknown job should error")
	}
}

func TestSubmitCancelledWhileQueued(t *testing.T) {
	// A job whose ctx is cancelled while it waits for nodes releases its
	// grant without running — the scancel of a pending job.
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	e.Go("blocker", func(p *sim.Proc) {
		c.Submit(nil, p, JobSpec{Name: "long", Partition: "cpu",
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(time.Hour); return nil }})
	})
	e.Go("operator", func(p *sim.Proc) {
		p.Sleep(10 * time.Minute)
		cancel()
	})
	var job *Job
	var err error
	e.Go("user", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		job, err = c.Submit(ctx, p, JobSpec{Name: "doomed", Partition: "cpu",
			Run: func(_ context.Context, p *sim.Proc) error { ran = true; return nil }})
	})
	e.Run()
	if ran {
		t.Fatal("cancelled job body ran")
	}
	if err == nil || job == nil || job.State != Cancelled {
		t.Fatalf("job = %+v err = %v", job, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v should wrap context.Canceled", err)
	}
	// The blocker job must still complete: the cancelled job freed the
	// grant it held.
	if c.Jobs()[0].State != Completed {
		t.Fatalf("blocker state = %v", c.Jobs()[0].State)
	}
}

func TestPilotExecuteCancelled(t *testing.T) {
	e := sim.New(epoch)
	pe := NewPilotEndpoint(e, "polaris", 1, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Go("u", func(p *sim.Proc) {
		err := pe.Execute(ctx, p, func(context.Context, *sim.Proc) error {
			t.Error("body ran on dead ctx")
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	})
	e.Run()
	if pe.Executions != 0 || pe.ColdStarts != 0 {
		t.Fatalf("stats after cancelled execute: %d/%d", pe.Executions, pe.ColdStarts)
	}
}

func TestSFAPICancelAllAndWaitCtx(t *testing.T) {
	api := NewSFAPI("secret")
	started := make(chan struct{}, 2)
	api.Register("hang", func(ctx context.Context, args map[string]string) error {
		started <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	})
	j1, _ := api.Submit("hang", nil)
	j2, _ := api.Submit("hang", nil)
	<-started
	<-started

	// WaitCtx gives up when its own ctx expires while the job hangs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := api.WaitCtx(ctx, j1.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitCtx err = %v", err)
	}

	if n := api.CancelAll(); n != 2 {
		t.Fatalf("CancelAll hit %d jobs, want 2", n)
	}
	for _, id := range []int{j1.ID, j2.ID} {
		final, err := api.Wait(id)
		if err != nil || final.State != Cancelled {
			t.Fatalf("job %d final = %+v err = %v", id, final, err)
		}
	}
	if n := api.CancelAll(); n != 0 {
		t.Fatalf("second CancelAll hit %d jobs", n)
	}
}

func TestSFAPIParentCtxCancelsJob(t *testing.T) {
	api := NewSFAPI("secret")
	started := make(chan struct{})
	api.Register("hang", func(ctx context.Context, args map[string]string) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	parent, cancel := context.WithCancel(context.Background())
	job, err := api.SubmitCtx(parent, "hang", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	final, err := api.Wait(job.ID)
	if err != nil || final.State != Cancelled {
		t.Fatalf("final = %+v err = %v", final, err)
	}
}

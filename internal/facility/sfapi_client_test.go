package facility

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
)

func newClientFixture(t *testing.T) (*SFAPI, *SFClient, func()) {
	t.Helper()
	api := NewSFAPI("secret")
	srv := httptest.NewServer(api.Handler())
	client := &SFClient{
		BaseURL: srv.URL, Token: "secret",
		HTTP: srv.Client(), PollInterval: time.Millisecond,
	}
	return api, client, srv.Close
}

func TestSFClientSubmitAndWait(t *testing.T) {
	api, client, closeSrv := newClientFixture(t)
	defer closeSrv()
	api.Register("recon", func(ctx context.Context, args map[string]string) error {
		return nil
	})
	ctx := context.Background()
	if err := client.Status(ctx); err != nil {
		t.Fatalf("status: %v", err)
	}
	job, err := client.Submit(ctx, "recon", map[string]string{"scan": "s1"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, job.ID)
	if err != nil || final.State != Completed {
		t.Fatalf("final = %+v err = %v", final, err)
	}
}

func TestSFClientCancelViaHTTP(t *testing.T) {
	api, client, closeSrv := newClientFixture(t)
	defer closeSrv()
	started := make(chan struct{})
	api.Register("hang", func(ctx context.Context, args map[string]string) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	ctx := context.Background()
	job, err := client.Submit(ctx, "hang", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := client.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, job.ID)
	if err != nil || final.State != Cancelled {
		t.Fatalf("final = %+v err = %v", final, err)
	}
}

func TestSFClientClassifiesHTTPFailures(t *testing.T) {
	api, client, closeSrv := newClientFixture(t)
	defer closeSrv()
	api.Register("ok", func(ctx context.Context, args map[string]string) error { return nil })
	ctx := context.Background()

	// Unknown command → 400 → Permanent.
	if _, err := client.Submit(ctx, "nope", nil); faults.Classify(err) != faults.Permanent {
		t.Fatalf("unknown command classifies %v", faults.Classify(err))
	}
	// Missing job → 404 → Permanent.
	if _, err := client.Job(ctx, 9999); faults.Classify(err) != faults.Permanent {
		t.Fatalf("missing job classifies %v", faults.Classify(err))
	}
	// Wrong token → 401 → Permanent.
	bad := &SFClient{BaseURL: client.BaseURL, Token: "wrong", HTTP: client.HTTP}
	if err := bad.Status(ctx); faults.Classify(err) != faults.Permanent {
		t.Fatalf("bad token classifies %v", faults.Classify(err))
	}
}

func TestSFClientClassifiesServerErrorsTransient(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	client := &SFClient{BaseURL: srv.URL, Token: "x", HTTP: srv.Client()}
	err := client.Status(context.Background())
	if faults.Classify(err) != faults.Transient {
		t.Fatalf("503 classifies %v, want transient", faults.Classify(err))
	}
}

func TestSFClientTransportErrorTransient(t *testing.T) {
	// Point at a closed server: connection refused is a retryable
	// transport fault, not a ctx failure.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	client := &SFClient{BaseURL: url, Token: "x"}
	err := client.Status(context.Background())
	if faults.Classify(err) != faults.Transient {
		t.Fatalf("connection refused classifies %v, want transient", faults.Classify(err))
	}
}

func TestSFClientWaitHonorsCtx(t *testing.T) {
	api, client, closeSrv := newClientFixture(t)
	defer closeSrv()
	started := make(chan struct{})
	api.Register("hang", func(ctx context.Context, args map[string]string) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	job, err := client.Submit(context.Background(), "hang", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = client.Wait(ctx, job.ID)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v", err)
	}
	if faults.Classify(err) != faults.Timeout {
		t.Fatalf("classify = %v", faults.Classify(err))
	}
	// Clean up the hung job so the test leaves nothing running.
	api.CancelAll()
	if _, err := api.Wait(job.ID); err != nil {
		t.Fatal(err)
	}
}

package facility

import (
	"context"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestClusterSubmitSpans: a traced submission records queue_wait and
// walltime child spans that partition the job's total time, matching the
// job record exactly.
func TestClusterSubmitSpans(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "perlmutter")
	c.AddPartition("cpu", 1, map[string]int{"realtime": 10})
	root := trace.NewRoot("run", epoch)
	ctx := trace.NewContext(context.Background(), root)

	// An occupant holds the single node for 10 minutes so the traced job
	// has a nonzero queue wait.
	e.Go("occupant", func(p *sim.Proc) {
		c.Submit(nil, p, JobSpec{
			Name: "filler", Partition: "cpu",
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(10 * time.Minute); return nil },
		})
	})
	var job *Job
	e.Go("u", func(p *sim.Proc) {
		p.Sleep(time.Minute) // submit after the occupant holds the node
		job, _ = c.Submit(ctx, p, JobSpec{
			Name: "recon", Partition: "cpu", QOS: "realtime",
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(15 * time.Minute); return nil },
		})
	})
	e.Run()

	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("children = %d, want queue_wait + walltime", len(kids))
	}
	qw, wt := kids[0], kids[1]
	if qw.Stage() != "queue_wait" || wt.Stage() != "walltime" {
		t.Fatalf("stages = %q, %q", qw.Stage(), wt.Stage())
	}
	if qw.Duration() != job.QueueWait() || qw.Duration() != 9*time.Minute {
		t.Fatalf("queue_wait span %v, job %v", qw.Duration(), job.QueueWait())
	}
	if wt.Duration() != job.Walltime() || wt.Duration() != 15*time.Minute {
		t.Fatalf("walltime span %v, job %v", wt.Duration(), job.Walltime())
	}
	if qw.EndTime() != wt.StartTime() {
		t.Fatalf("stages not contiguous: %v vs %v", qw.EndTime(), wt.StartTime())
	}
}

// TestClusterCancelledSpanCloses: a job cancelled while pending still
// closes its queue_wait span and records no walltime span.
func TestClusterCancelledSpans(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 1, nil)
	root := trace.NewRoot("run", epoch)
	ctx, cancel := context.WithCancel(trace.NewContext(context.Background(), root))

	e.Go("occupant", func(p *sim.Proc) {
		c.Submit(nil, p, JobSpec{
			Name: "filler", Partition: "cpu",
			Run: func(_ context.Context, p *sim.Proc) error { p.Sleep(time.Hour); return nil },
		})
	})
	e.Go("u", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		c.Submit(ctx, p, JobSpec{
			Name: "doomed", Partition: "cpu",
			Run: func(_ context.Context, p *sim.Proc) error { return nil },
		})
	})
	e.Go("op", func(p *sim.Proc) {
		p.Sleep(5 * time.Minute)
		cancel()
	})
	e.Run()

	kids := root.Children()
	if len(kids) != 1 || kids[0].Stage() != "queue_wait" {
		t.Fatalf("cancelled job spans = %+v", kids)
	}
	if !kids[0].Ended() {
		t.Fatal("queue_wait span left open on cancel")
	}
}

// TestPilotExecuteSpans: the pilot path breaks down the same way as the
// batch path — queue_wait (acquire + cold start) then walltime.
func TestPilotExecuteSpans(t *testing.T) {
	e := sim.New(epoch)
	pe := NewPilotEndpoint(e, "alcf", 1, 2*time.Minute)
	root := trace.NewRoot("run", epoch)
	ctx := trace.NewContext(context.Background(), root)
	e.Go("u", func(p *sim.Proc) {
		pe.Execute(ctx, p, func(_ context.Context, p *sim.Proc) error {
			p.Sleep(8 * time.Minute)
			return nil
		})
		// Warm second execution: zero queue_wait.
		pe.Execute(ctx, p, func(_ context.Context, p *sim.Proc) error {
			p.Sleep(3 * time.Minute)
			return nil
		})
	})
	e.Run()

	kids := root.Children()
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 2×(queue_wait+walltime)", len(kids))
	}
	if kids[0].Stage() != "queue_wait" || kids[0].Duration() != 2*time.Minute {
		t.Fatalf("cold queue_wait = %v", kids[0].Duration())
	}
	if kids[1].Stage() != "walltime" || kids[1].Duration() != 8*time.Minute {
		t.Fatalf("walltime = %v", kids[1].Duration())
	}
	if kids[2].Stage() != "queue_wait" || kids[2].Duration() != 0 {
		t.Fatalf("warm queue_wait = %v", kids[2].Duration())
	}
	if kids[3].Stage() != "walltime" || kids[3].Duration() != 3*time.Minute {
		t.Fatalf("warm walltime = %v", kids[3].Duration())
	}
}

// TestJobBodySpanNesting: the job body's ctx carries the walltime span, so
// work started inside the job nests under it.
func TestJobBodySpanNesting(t *testing.T) {
	e := sim.New(epoch)
	c := NewCluster(e, "c")
	c.AddPartition("cpu", 1, nil)
	root := trace.NewRoot("run", epoch)
	ctx := trace.NewContext(context.Background(), root)
	e.Go("u", func(p *sim.Proc) {
		c.Submit(ctx, p, JobSpec{
			Name: "j", Partition: "cpu",
			Run: func(ctx context.Context, p *sim.Proc) error {
				inner := trace.FromContext(ctx).StartChildStage("step", "step", p.Now())
				p.Sleep(time.Minute)
				inner.End(p.Now())
				return nil
			},
		})
	})
	e.Run()
	wt := root.Children()[1]
	if wt.Stage() != "walltime" {
		t.Fatalf("second child = %q", wt.Stage())
	}
	inner := wt.Children()
	if len(inner) != 1 || inner[0].Stage() != "step" || inner[0].Duration() != time.Minute {
		t.Fatalf("nested spans = %+v", inner)
	}
}

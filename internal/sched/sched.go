// Package sched is the multi-tenant campaign scheduler: it arbitrates N
// beamlines × priority classes over one shared worker pool, the way a
// facility queue arbitrates many instruments over shared compute. Work
// arrives as opaque run functions submitted under a Tenant (beamline ×
// class); per-tenant FIFO queues feed a worker-pool dispatcher that
// orders tenants by stride-scheduling fair share within a strict
// priority band (streaming before file), with a configurable slice of
// workers reserved for the streaming class so the paper's ≤10 s preview
// promise survives any file-branch backlog structurally, not
// statistically.
//
// Admission control closes the loop with the SLO layer: submit-time
// backpressure sheds file work past a per-tenant queue bound, and
// dispatch-time control defers (requeue after a delay) or sheds file
// work while a guarded objective's error budget is burning. Streaming
// work is never deferred or shed — the paper's ordering, "defer
// file-branch work before touching streaming runs", is hard-coded.
//
// The scheduler is env-clock only: it runs on the discrete-event kernel,
// never reads the wall clock (repolint's simclock analyzer enforces
// this), and with a seeded campaign its full decision stream —
// enqueue/dispatch/defer/shed, journaled with run correlation — is
// byte-identical run to run.
package sched

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Class is a tenant's priority class. Classes form a strict priority
// band: every queued streaming run dispatches before any file run.
type Class string

// The two priority classes of the paper's pipeline.
const (
	ClassStreaming Class = "streaming"
	ClassFile      Class = "file"
)

// rank orders classes for strict priority (lower dispatches first).
func (c Class) rank() int {
	if c == ClassStreaming {
		return 0
	}
	return 1
}

// Tenant identifies one scheduling principal: a beamline × class pair
// with a fair-share weight relative to other tenants of the same class.
type Tenant struct {
	Beamline string
	Class    Class
	// Weight is the tenant's fair-share weight (min 1 applied).
	Weight float64
}

// ID returns the canonical tenant label, "beamline/class" — the value
// threaded through obslog events, monitor labels, and trace attrs.
func (t Tenant) ID() string { return t.Beamline + "/" + string(t.Class) }

// BurnSource exposes an SLO engine's burn state to admission control;
// slo.Engine satisfies it structurally (sched does not import slo).
type BurnSource interface {
	BurnState(name string) (rate float64, firing bool)
}

// LatencyRecorder receives end-to-end (enqueue → completion) latencies;
// slo.Engine.Record satisfies it structurally. The scheduler feeds
// "sched:<class>" sources, distinct from the flow layer's "flow:<name>"
// sources, because flow durations exclude queue wait — the scheduler is
// the only layer that sees the latency a user actually experiences.
type LatencyRecorder interface {
	Record(ctx context.Context, source string, dur time.Duration, ok bool)
}

// Admission configures backpressure and SLO-keyed load shedding.
type Admission struct {
	// Enabled turns dispatch-time defer/shed on. Submit-time queue
	// bounds apply regardless (a full queue is backpressure, not policy).
	Enabled bool
	// GuardObjectives are the SLO objective names whose burn rate gates
	// file-class dispatch.
	GuardObjectives []string
	// GuardRate is the burn rate at or above which the guard trips
	// (default 1: the budget burning faster than it recovers). The rate
	// is read live from the BurnSource, so the guard self-clears as miss
	// samples age out of the objective's burn window.
	GuardRate float64
	// MaxQueuePerTenant sheds file-class submissions when the tenant's
	// queue already holds this many runs (0 = unbounded).
	MaxQueuePerTenant int
	// DeferDelay is how long a deferred run waits before re-entering its
	// queue (default 1m).
	DeferDelay time.Duration
	// MaxDefers sheds a run after it has been deferred this many times
	// (default 3), bounding how long pressure can park a run.
	MaxDefers int
	// ShedAfter sheds a guarded run whose total queue age exceeds it
	// (0 = never shed by age).
	ShedAfter time.Duration
}

// Config assembles a Scheduler.
type Config struct {
	// Workers is the worker-pool size (min 1).
	Workers int
	// Reserved is how many of the workers serve only the streaming class
	// (clamped to Workers-1 so file work cannot be starved outright).
	Reserved int
	// Journal receives the decision stream (nil drops it).
	Journal *obslog.Journal
	// Metrics receives per-tenant counters and queue-depth gauges (nil
	// drops them).
	Metrics *monitor.Registry
	// Recorder receives end-to-end latencies under "sched:<class>" (nil
	// drops them).
	Recorder LatencyRecorder
	// Burn supplies the guard objectives' burn state (nil: guard never
	// trips).
	Burn BurnSource
	// Admission is the backpressure/shedding policy.
	Admission Admission
	// Targets are the per-class end-to-end latency targets attainment is
	// reported against (a missing class counts every completion as met).
	Targets map[Class]time.Duration
}

// item is one queued unit of work.
type item struct {
	tenant   *tenantState
	flow     string
	ctx      context.Context
	fn       func(ctx context.Context, p *sim.Proc)
	seq      int // global submission order, for journal correlation
	enqueued time.Time
	defers   int
	runID    int // bound by RunStarted once the flow layer assigns it
}

// tenantState is the scheduler's per-tenant bookkeeping.
type tenantState struct {
	t      Tenant
	id     string
	stride float64
	pass   float64
	queue  []*item

	enqueued   int
	dispatched int
	completed  int
	met        int // completions within the class target
	deferred   int // defer decisions (one run may defer several times)
	shed       int
	waits      []float64 // dispatch waits, seconds
	e2es       []float64 // end-to-end latencies, seconds
}

// strideScale keeps pass values in a readable range: a weight-1 tenant
// advances by strideScale per dispatch, a weight-3 tenant by a third.
const strideScale = 1 << 16

// Scheduler owns the tenant queues and the worker pool. Create with New,
// register tenants, start workers with StartWorkers, submit from sim
// procs, then Drain. All exported methods are safe for concurrent use by
// API readers; mutation happens only from sim procs.
type Scheduler struct {
	mu      sync.Mutex
	e       *sim.Engine
	cfg     Config
	tenants []*tenantState          // guarded by mu; registration order: the deterministic tie-break
	byID    map[string]*tenantState // guarded by mu

	wake        *sim.Signal // guarded by mu; replaced on every broadcast
	done        *sim.Signal // set once in New; fired when closed and idle
	closed      bool        // guarded by mu
	outstanding int         // guarded by mu; accepted and not yet finished or shed
	seq         int         // guarded by mu
	totalShed   int         // guarded by mu
	totalDefer  int         // guarded by mu
}

// New creates a scheduler on the engine. Workers do not start until
// StartWorkers.
func New(e *sim.Engine, cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Reserved < 0 {
		cfg.Reserved = 0
	}
	if cfg.Reserved >= cfg.Workers {
		cfg.Reserved = cfg.Workers - 1
	}
	if cfg.Admission.GuardRate <= 0 {
		cfg.Admission.GuardRate = 1
	}
	if cfg.Admission.DeferDelay <= 0 {
		cfg.Admission.DeferDelay = time.Minute
	}
	if cfg.Admission.MaxDefers <= 0 {
		cfg.Admission.MaxDefers = 3
	}
	return &Scheduler{
		e:    e,
		cfg:  cfg,
		byID: map[string]*tenantState{},
		wake: sim.NewSignal(e),
		done: sim.NewSignal(e),
	}
}

// Register adds a tenant. Registration order is the deterministic
// tie-break when passes are equal, so register tenants in a fixed order.
// Registering an existing ID updates its weight.
func (s *Scheduler) Register(t Tenant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registerLocked(t)
}

func (s *Scheduler) registerLocked(t Tenant) *tenantState {
	if t.Weight < 1 {
		t.Weight = 1
	}
	id := t.ID()
	if ts, ok := s.byID[id]; ok {
		ts.t.Weight = t.Weight
		ts.stride = strideScale / t.Weight
		return ts
	}
	ts := &tenantState{t: t, id: id, stride: strideScale / t.Weight}
	// A late tenant starts at the current minimum pass so it competes
	// fairly instead of monopolizing the pool to "catch up".
	min := 0.0
	for i, other := range s.tenants {
		if i == 0 || other.pass < min {
			min = other.pass
		}
	}
	ts.pass = min
	s.tenants = append(s.tenants, ts)
	s.byID[id] = ts
	return ts
}

// StartWorkers launches the worker pool as sim procs: cfg.Reserved of
// them serve only the streaming class, the rest serve every class.
func (s *Scheduler) StartWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		reservedOnly := i < s.cfg.Reserved
		name := fmt.Sprintf("sched-worker-%d", i)
		if reservedOnly {
			name = fmt.Sprintf("sched-reserved-%d", i)
		}
		s.e.Go(name, func(p *sim.Proc) { s.worker(p, reservedOnly) })
	}
}

// Submit queues one run under the tenant, auto-registering it if needed.
// The returned bool is false when the run was shed at admission (file
// class over its queue bound); streaming submissions are always
// accepted. Call from a sim proc.
func (s *Scheduler) Submit(ctx context.Context, t Tenant, flowName string, fn func(ctx context.Context, p *sim.Proc)) bool {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	ts := s.registerLocked(t)
	ctx = obslog.WithTenant(obslog.NewContext(ctx, s.cfg.Journal), ts.id)
	if s.closed {
		ts.shed++
		s.totalShed++
		s.mu.Unlock()
		s.addMetric("sched_shed_total", 1,
			monitor.L("tenant", ts.id), monitor.L("reason", "closed"))
		s.cfg.Journal.Emit(ctx, obslog.LevelWarn, "sched", "run shed",
			obslog.F("flow", flowName), obslog.F("reason", "closed"))
		return false
	}
	if ts.t.Class != ClassStreaming &&
		s.cfg.Admission.MaxQueuePerTenant > 0 &&
		len(ts.queue) >= s.cfg.Admission.MaxQueuePerTenant {
		ts.shed++
		s.totalShed++
		s.mu.Unlock()
		s.addMetric("sched_shed_total", 1,
			monitor.L("tenant", ts.id), monitor.L("reason", "queue_full"))
		s.cfg.Journal.Emit(ctx, obslog.LevelWarn, "sched", "run shed",
			obslog.F("flow", flowName), obslog.F("reason", "queue_full"),
			obslog.F("depth", len(ts.queue)))
		return false
	}
	s.seq++
	it := &item{
		tenant: ts, flow: flowName, ctx: ctx, fn: fn,
		seq: s.seq, enqueued: s.e.Now(),
	}
	ts.queue = append(ts.queue, it)
	ts.enqueued++
	s.outstanding++
	depth := len(ts.queue)
	s.broadcastLocked()
	s.mu.Unlock()
	s.addMetric("sched_enqueued_total", 1, monitor.L("tenant", ts.id))
	s.setGauge("sched_queue_depth", float64(depth), monitor.L("tenant", ts.id))
	s.cfg.Journal.Emit(ctx, obslog.LevelDebug, "sched", "run enqueued",
		obslog.F("flow", flowName), obslog.F("seq", it.seq), obslog.F("depth", depth))
	return true
}

// addMetric and setGauge guard the optional registry: monitor.Registry
// methods are not nil-safe, and metrics are optional here.
func (s *Scheduler) addMetric(name string, delta float64, labels ...monitor.Label) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.AddL(name, delta, labels...)
	}
}

func (s *Scheduler) setGauge(name string, v float64, labels ...monitor.Label) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.SetL(name, v, labels...)
	}
}

// broadcastLocked wakes every waiting worker by firing the current wake
// signal and installing a fresh one.
func (s *Scheduler) broadcastLocked() {
	w := s.wake
	s.wake = sim.NewSignal(s.e)
	w.Fire()
}

// popLocked removes and returns the next item under strict priority +
// stride fair-share, or nil when no eligible queue has work. Reserved
// workers only see the streaming band.
func (s *Scheduler) popLocked(reservedOnly bool) *item {
	maxRank := 1
	if reservedOnly {
		maxRank = 0
	}
	for rank := 0; rank <= maxRank; rank++ {
		var best *tenantState
		for _, ts := range s.tenants {
			if ts.t.Class.rank() != rank || len(ts.queue) == 0 {
				continue
			}
			if best == nil || ts.pass < best.pass {
				best = ts // strict <: ties resolve to registration order
			}
		}
		if best == nil {
			continue
		}
		it := best.queue[0]
		best.queue = best.queue[1:]
		best.pass += best.stride
		return it
	}
	return nil
}

// guard returns whether any guard objective is burning at or above
// GuardRate, and the highest rate seen.
func (s *Scheduler) guard() (bool, float64) {
	if s.cfg.Burn == nil || !s.cfg.Admission.Enabled {
		return false, 0
	}
	var worst float64
	trip := false
	for _, name := range s.cfg.Admission.GuardObjectives {
		rate, _ := s.cfg.Burn.BurnState(name)
		if rate > worst {
			worst = rate
		}
		if rate >= s.cfg.Admission.GuardRate {
			trip = true
		}
	}
	return trip, worst
}

// worker is one pool worker's dispatch loop.
func (s *Scheduler) worker(p *sim.Proc, reservedOnly bool) {
	for {
		s.mu.Lock()
		it := s.popLocked(reservedOnly)
		if it == nil {
			if s.closed && s.outstanding == 0 {
				s.mu.Unlock()
				return
			}
			w := s.wake
			s.mu.Unlock()
			w.Wait(p)
			continue
		}
		ts := it.tenant
		depth := len(ts.queue)
		s.mu.Unlock()
		s.setGauge("sched_queue_depth", float64(depth), monitor.L("tenant", ts.id))

		// Dispatch-time admission: only file-band work is ever deferred
		// or shed, and only while a guarded objective is burning.
		if ts.t.Class != ClassStreaming && s.cfg.Admission.Enabled {
			if trip, rate := s.guard(); trip {
				age := p.Now().Sub(it.enqueued)
				if it.defers >= s.cfg.Admission.MaxDefers ||
					(s.cfg.Admission.ShedAfter > 0 && age >= s.cfg.Admission.ShedAfter) {
					s.shed(it, "slo_pressure", rate)
					continue
				}
				s.deferItem(it, rate)
				continue
			}
		}
		s.execute(p, it)
	}
}

// deferItem parks the item in a timer proc that requeues it after
// DeferDelay, freeing this worker immediately.
func (s *Scheduler) deferItem(it *item, rate float64) {
	s.mu.Lock()
	it.defers++
	it.tenant.deferred++
	s.totalDefer++
	s.mu.Unlock()
	s.addMetric("sched_deferred_total", 1, monitor.L("tenant", it.tenant.id))
	s.cfg.Journal.Emit(it.ctx, obslog.LevelInfo, "sched", "run deferred",
		obslog.F("flow", it.flow), obslog.F("seq", it.seq),
		obslog.F("defers", it.defers), obslog.F("delay", s.cfg.Admission.DeferDelay),
		obslog.F("burn_rate", rate))
	s.e.Go(fmt.Sprintf("sched-defer-%d", it.seq), func(tp *sim.Proc) {
		tp.Sleep(s.cfg.Admission.DeferDelay)
		s.mu.Lock()
		it.tenant.queue = append(it.tenant.queue, it)
		s.broadcastLocked()
		s.mu.Unlock()
	})
}

// shed drops the item without running it.
func (s *Scheduler) shed(it *item, reason string, rate float64) {
	s.mu.Lock()
	it.tenant.shed++
	s.totalShed++
	s.finishLocked()
	s.mu.Unlock()
	s.addMetric("sched_shed_total", 1,
		monitor.L("tenant", it.tenant.id), monitor.L("reason", reason))
	s.cfg.Journal.Emit(it.ctx, obslog.LevelWarn, "sched", "run shed",
		obslog.F("flow", it.flow), obslog.F("seq", it.seq),
		obslog.F("reason", reason), obslog.F("defers", it.defers),
		obslog.F("burn_rate", rate))
}

// execute runs the item's work function on this worker and records the
// end-to-end latency.
func (s *Scheduler) execute(p *sim.Proc, it *item) {
	ts := it.tenant
	wait := p.Now().Sub(it.enqueued)
	s.mu.Lock()
	ts.dispatched++
	ts.waits = append(ts.waits, wait.Seconds())
	s.mu.Unlock()
	s.addMetric("sched_dispatched_total", 1, monitor.L("tenant", ts.id))
	s.cfg.Journal.Emit(it.ctx, obslog.LevelInfo, "sched", "run dispatched",
		obslog.F("flow", it.flow), obslog.F("seq", it.seq),
		obslog.F("wait", wait), obslog.F("defers", it.defers))

	it.fn(newItemContext(it.ctx, it), p)

	e2e := p.Now().Sub(it.enqueued)
	target, hasTarget := s.cfg.Targets[ts.t.Class]
	s.mu.Lock()
	ts.completed++
	ts.e2es = append(ts.e2es, e2e.Seconds())
	if !hasTarget || e2e <= target {
		ts.met++
	}
	s.finishLocked()
	s.mu.Unlock()
	s.cfg.Journal.Emit(it.ctx, obslog.LevelDebug, "sched", "run finished",
		obslog.F("flow", it.flow), obslog.F("seq", it.seq), obslog.F("e2e", e2e))
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.Record(it.ctx, "sched:"+string(ts.t.Class), e2e, true)
	}
}

// finishLocked retires one outstanding item and, when the scheduler is
// closed and idle, wakes everyone and fires done.
func (s *Scheduler) finishLocked() {
	s.outstanding--
	if s.closed && s.outstanding == 0 {
		s.broadcastLocked()
		s.done.Fire()
	}
}

// Close stops accepting new submissions and arms the pool's idle-exit
// condition: workers exit once every already-accepted run has finished
// or shed. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.broadcastLocked()
	if s.outstanding == 0 {
		s.done.Fire()
	}
}

// Drain closes the scheduler and blocks the calling proc until every
// accepted run has finished or shed and the workers have exited.
func (s *Scheduler) Drain(p *sim.Proc) {
	s.Close()
	s.done.Wait(p)
}

// RunStarted binds the flow run ID to the queue item that dispatched it;
// it satisfies flow's StartObserver structurally. The "run bound" event
// carries the run ID and tenant through the ctx the flow layer built, so
// the journal links scheduler decisions (keyed by seq) to run IDs.
func (s *Scheduler) RunStarted(ctx context.Context, flowName string) {
	it := itemFromContext(ctx)
	if it == nil {
		return
	}
	s.mu.Lock()
	it.runID = obslog.RunFromContext(ctx)
	s.mu.Unlock()
	s.cfg.Journal.Emit(ctx, obslog.LevelDebug, "sched", "run bound",
		obslog.F("flow", flowName), obslog.F("seq", it.seq))
}

// itemKey carries the dispatching item through the work function's ctx.
type itemKey struct{}

func newItemContext(ctx context.Context, it *item) context.Context {
	return context.WithValue(ctx, itemKey{}, it)
}

func itemFromContext(ctx context.Context) *item {
	if ctx == nil {
		return nil
	}
	it, _ := ctx.Value(itemKey{}).(*item)
	return it
}

// TenantReport is one tenant's live state and attainment.
type TenantReport struct {
	Tenant     string  `json:"tenant"`
	Beamline   string  `json:"beamline"`
	Class      Class   `json:"class"`
	Weight     float64 `json:"weight"`
	QueueDepth int     `json:"queue_depth"`
	Enqueued   int     `json:"enqueued"`
	Dispatched int     `json:"dispatched"`
	Completed  int     `json:"completed"`
	Deferred   int     `json:"deferred"`
	Shed       int     `json:"shed"`
	// AttainmentPct is the percentage of completions within the class
	// target (100 when no runs completed: no traffic, no misses).
	AttainmentPct float64 `json:"attainment_pct"`
	MeanWaitS     float64 `json:"mean_wait_s"`
	P99WaitS      float64 `json:"p99_wait_s"`
	MeanE2ES      float64 `json:"mean_e2e_s"`
}

// Report is the scheduler's live state, served at /api/sched.
type Report struct {
	Workers          int            `json:"workers"`
	Reserved         int            `json:"reserved"`
	AdmissionEnabled bool           `json:"admission_enabled"`
	GuardActive      bool           `json:"guard_active"`
	GuardBurnRate    float64        `json:"guard_burn_rate"`
	Outstanding      int            `json:"outstanding"`
	TotalDeferred    int            `json:"total_deferred"`
	TotalShed        int            `json:"total_shed"`
	Tenants          []TenantReport `json:"tenants"`
}

// Snapshot returns the current report, tenants in registration order.
func (s *Scheduler) Snapshot() Report {
	trip, rate := s.guard()
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Report{
		Workers:          s.cfg.Workers,
		Reserved:         s.cfg.Reserved,
		AdmissionEnabled: s.cfg.Admission.Enabled,
		GuardActive:      trip,
		GuardBurnRate:    rate,
		Outstanding:      s.outstanding,
		TotalDeferred:    s.totalDefer,
		TotalShed:        s.totalShed,
		Tenants:          make([]TenantReport, 0, len(s.tenants)),
	}
	for _, ts := range s.tenants {
		tr := TenantReport{
			Tenant:        ts.id,
			Beamline:      ts.t.Beamline,
			Class:         ts.t.Class,
			Weight:        ts.t.Weight,
			QueueDepth:    len(ts.queue),
			Enqueued:      ts.enqueued,
			Dispatched:    ts.dispatched,
			Completed:     ts.completed,
			Deferred:      ts.deferred,
			Shed:          ts.shed,
			AttainmentPct: 100,
		}
		if ts.completed > 0 {
			tr.AttainmentPct = 100 * float64(ts.met) / float64(ts.completed)
		}
		if len(ts.waits) > 0 {
			tr.MeanWaitS = stats.Summarize(ts.waits).Mean
			tr.P99WaitS = stats.Percentile(ts.waits, 99)
		}
		if len(ts.e2es) > 0 {
			tr.MeanE2ES = stats.Summarize(ts.e2es).Mean
		}
		r.Tenants = append(r.Tenants, tr)
	}
	return r
}

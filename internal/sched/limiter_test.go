package sched

import (
	"context"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/sim"
)

// A queued run must not hold flow-limiter tokens: the scheduler calls
// the work function only at dispatch, so concurrency slots are acquired
// by executing runs, never by runs sitting in a tenant queue. The
// regression this guards: if tokens were taken at submit time, a deep
// queue behind a slow tenant would starve the limiter for every other
// client of the same flow class.
func TestQueuedRunsHoldNoLimiterTokens(t *testing.T) {
	e := sim.New(epoch)
	s := New(e, Config{Workers: 1})
	lim := flow.NewSimLimiter(e, 2)
	tn := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 1}

	s.StartWorkers()
	produced := e.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			s.Submit(context.Background(), tn, "f", func(_ context.Context, wp *sim.Proc) {
				lim.Acquire(flow.SimEnv{P: wp})
				wp.Sleep(time.Minute)
				lim.Release()
			})
		}
	})
	// With one worker, at most one run executes at a time, so the 2-slot
	// limiter must always have a free slot while nine runs sit queued —
	// an outside client acquires without ever blocking.
	probed := e.Go("probe", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(90 * time.Second)
			t0 := p.Now()
			lim.Acquire(flow.SimEnv{P: p})
			if w := p.Now().Sub(t0); w != 0 {
				t.Errorf("probe %d blocked %v on the limiter while runs were queued", i, w)
			}
			lim.Release()
		}
	})
	e.Go("drain", func(p *sim.Proc) {
		sim.WaitAll(p, produced, probed)
		s.Drain(p)
	})
	e.Run()

	if pq := lim.PeakQueue(); pq != 0 {
		t.Fatalf("limiter peak queue %d, want 0 (queued runs leaked tokens)", pq)
	}
	rep := s.Snapshot()
	if rep.Tenants[0].Completed != 10 {
		t.Fatalf("completed %d of 10 runs", rep.Tenants[0].Completed)
	}
}

package sched

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package's tests on the goroutine-leak check: a
// passing run with worker procs still alive fails.
func TestMain(m *testing.M) { leakcheck.Main(m) }

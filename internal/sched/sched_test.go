package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obslog"
	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

// dispatchLog records dispatch order from inside work functions.
type dispatchLog struct {
	mu    sync.Mutex
	order []string
}

func (d *dispatchLog) add(id string) {
	d.mu.Lock()
	d.order = append(d.order, id)
	d.mu.Unlock()
}

// runCampaign starts workers, runs body in a producer proc, then drains.
func runCampaign(e *sim.Engine, s *Scheduler, body func(p *sim.Proc)) {
	s.StartWorkers()
	done := e.Go("producer", body)
	e.Go("drainer", func(p *sim.Proc) {
		done.Wait(p)
		s.Drain(p)
	})
	e.Run()
}

func TestStrideFairShare(t *testing.T) {
	e := sim.New(epoch)
	s := New(e, Config{Workers: 1})
	heavy := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 3}
	light := Tenant{Beamline: "bl1", Class: ClassFile, Weight: 1}
	s.Register(heavy)
	s.Register(light)

	var log dispatchLog
	work := func(id string) func(ctx context.Context, p *sim.Proc) {
		return func(ctx context.Context, p *sim.Proc) {
			log.add(id)
			p.Sleep(time.Minute)
		}
	}
	runCampaign(e, s, func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			s.Submit(context.Background(), heavy, "f", work("heavy"))
			s.Submit(context.Background(), light, "f", work("light"))
		}
	})

	// In the first 40 dispatches of a fully backlogged pool, shares must
	// track the 3:1 weights.
	counts := map[string]int{}
	for _, id := range log.order[:40] {
		counts[id]++
	}
	if counts["heavy"] < 28 || counts["heavy"] > 32 {
		t.Fatalf("heavy got %d of first 40 dispatches, want ~30 (3:1 weights)", counts["heavy"])
	}
	rep := s.Snapshot()
	if rep.Tenants[0].Completed != 40 || rep.Tenants[1].Completed != 40 {
		t.Fatalf("completions = %d/%d, want 40/40", rep.Tenants[0].Completed, rep.Tenants[1].Completed)
	}
}

func TestStrictPriorityStreamingFirst(t *testing.T) {
	e := sim.New(epoch)
	s := New(e, Config{Workers: 1})
	file := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 1}
	stream := Tenant{Beamline: "bl0", Class: ClassStreaming, Weight: 1}
	s.Register(stream)
	s.Register(file)

	var log dispatchLog
	runCampaign(e, s, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			s.Submit(context.Background(), file, "f", func(ctx context.Context, p *sim.Proc) {
				log.add("file")
				p.Sleep(time.Minute)
			})
		}
		// Arrives while the worker is busy and the file queue is deep.
		p.Sleep(30 * time.Second)
		s.Submit(context.Background(), stream, "s", func(ctx context.Context, p *sim.Proc) {
			log.add("stream")
			p.Sleep(time.Second)
		})
	})

	if log.order[0] != "file" || log.order[1] != "stream" {
		t.Fatalf("dispatch order = %v, want streaming jumping the file backlog", log.order)
	}
}

func TestReservedWorkersProtectStreaming(t *testing.T) {
	e := sim.New(epoch)
	s := New(e, Config{
		Workers: 2, Reserved: 1,
		Targets: map[Class]time.Duration{ClassStreaming: 10 * time.Second},
	})
	file := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 1}
	stream := Tenant{Beamline: "bl0", Class: ClassStreaming, Weight: 1}
	s.Register(stream)
	s.Register(file)

	runCampaign(e, s, func(p *sim.Proc) {
		// Enough long file runs to saturate the shared worker for hours.
		for i := 0; i < 10; i++ {
			s.Submit(context.Background(), file, "f", func(ctx context.Context, p *sim.Proc) {
				p.Sleep(30 * time.Minute)
			})
		}
		// Streaming arrives throughout; the reserved worker must take it
		// immediately every time.
		for i := 0; i < 20; i++ {
			p.Sleep(5 * time.Minute)
			s.Submit(context.Background(), stream, "s", func(ctx context.Context, p *sim.Proc) {
				p.Sleep(5 * time.Second)
			})
		}
	})

	rep := s.Snapshot()
	st := rep.Tenants[0]
	if st.Class != ClassStreaming {
		t.Fatalf("tenant order: %+v", rep.Tenants)
	}
	if st.Completed != 20 || st.AttainmentPct != 100 {
		t.Fatalf("streaming completed=%d attainment=%.1f, want 20 at 100%%", st.Completed, st.AttainmentPct)
	}
	if st.P99WaitS != 0 {
		t.Fatalf("streaming p99 wait = %gs, want 0 (reserved worker always free)", st.P99WaitS)
	}
}

// stubBurn is a BurnSource the test drives by hand.
type stubBurn struct {
	mu    sync.Mutex
	rates map[string]float64
}

func (b *stubBurn) set(name string, rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rates == nil {
		b.rates = map[string]float64{}
	}
	b.rates[name] = rate
}

func (b *stubBurn) BurnState(name string) (float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.rates[name]
	return r, r >= 2
}

func TestAdmissionDefersThenSheds(t *testing.T) {
	e := sim.New(epoch)
	burn := &stubBurn{}
	jr := obslog.New(e, 0)
	s := New(e, Config{
		Workers: 1,
		Journal: jr,
		Burn:    burn,
		Admission: Admission{
			Enabled:         true,
			GuardObjectives: []string{"streaming_preview"},
			DeferDelay:      time.Minute,
			MaxDefers:       2,
		},
	})
	file := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 1}
	stream := Tenant{Beamline: "bl0", Class: ClassStreaming, Weight: 1}

	var streamRan, fileRan int
	runCampaign(e, s, func(p *sim.Proc) {
		burn.set("streaming_preview", 3) // guard trips from the start
		s.Submit(context.Background(), file, "f", func(ctx context.Context, p *sim.Proc) {
			fileRan++
		})
		s.Submit(context.Background(), stream, "s", func(ctx context.Context, p *sim.Proc) {
			streamRan++
			p.Sleep(time.Second)
		})
		// A second file run submitted later, after the guard clears: it
		// must dispatch normally.
		p.Sleep(10 * time.Minute)
		burn.set("streaming_preview", 0)
		s.Submit(context.Background(), file, "f2", func(ctx context.Context, p *sim.Proc) {
			fileRan++
		})
	})

	if streamRan != 1 {
		t.Fatalf("streaming ran %d times, want 1 (never deferred)", streamRan)
	}
	if fileRan != 1 {
		t.Fatalf("file ran %d times, want 1 (first shed after max defers, second clean)", fileRan)
	}
	rep := s.Snapshot()
	ft := rep.Tenants[0]
	if ft.Deferred != 2 || ft.Shed != 1 {
		t.Fatalf("file deferred=%d shed=%d, want 2 defers then 1 shed", ft.Deferred, ft.Shed)
	}
	if n := len(jr.Events(obslog.Filter{Component: "sched", Tenant: "bl0/file"})); n == 0 {
		t.Fatal("no sched events journaled for the file tenant")
	}
	sheds := 0
	for _, ev := range jr.Events(obslog.Filter{Component: "sched"}) {
		if ev.Msg == "run shed" {
			sheds++
			for _, f := range ev.Fields {
				if f.Key == "reason" && f.Value != "slo_pressure" {
					t.Fatalf("shed reason = %q, want slo_pressure", f.Value)
				}
			}
		}
	}
	if sheds != 1 {
		t.Fatalf("journaled sheds = %d, want 1", sheds)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	e := sim.New(epoch)
	s := New(e, Config{
		Workers:   1,
		Admission: Admission{MaxQueuePerTenant: 2},
	})
	file := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 1}
	stream := Tenant{Beamline: "bl0", Class: ClassStreaming, Weight: 1}

	var accepted, rejected int
	runCampaign(e, s, func(p *sim.Proc) {
		// First submission dispatches immediately and occupies the worker.
		s.Submit(context.Background(), file, "f", func(ctx context.Context, p *sim.Proc) {
			p.Sleep(time.Hour)
		})
		p.Sleep(time.Second) // let the worker pick it up
		for i := 0; i < 5; i++ {
			if s.Submit(context.Background(), file, "f", func(ctx context.Context, p *sim.Proc) {}) {
				accepted++
			} else {
				rejected++
			}
		}
		// Streaming ignores the file queue bound.
		if !s.Submit(context.Background(), stream, "s", func(ctx context.Context, p *sim.Proc) {}) {
			t.Error("streaming submission rejected")
		}
	})

	if accepted != 2 || rejected != 3 {
		t.Fatalf("accepted=%d rejected=%d, want 2/3 with MaxQueuePerTenant=2", accepted, rejected)
	}
	rep := s.Snapshot()
	if rep.TotalShed != 3 {
		t.Fatalf("TotalShed = %d, want 3", rep.TotalShed)
	}
}

// captureRecorder records latency samples fed to the SLO layer.
type captureRecorder struct {
	mu      sync.Mutex
	sources []string
	durs    []time.Duration
}

func (r *captureRecorder) Record(ctx context.Context, source string, dur time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, source)
	r.durs = append(r.durs, dur)
}

func TestEndToEndLatencyRecorded(t *testing.T) {
	e := sim.New(epoch)
	rec := &captureRecorder{}
	s := New(e, Config{Workers: 1, Recorder: rec})
	file := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 1}

	runCampaign(e, s, func(p *sim.Proc) {
		// Two runs: the second queues behind the first, so its e2e must
		// include the queue wait the flow layer never sees.
		for i := 0; i < 2; i++ {
			s.Submit(context.Background(), file, "f", func(ctx context.Context, p *sim.Proc) {
				p.Sleep(10 * time.Minute)
			})
		}
	})

	if len(rec.sources) != 2 || rec.sources[0] != "sched:file" {
		t.Fatalf("recorded sources = %v", rec.sources)
	}
	if rec.durs[0] != 10*time.Minute {
		t.Fatalf("first e2e = %v, want 10m", rec.durs[0])
	}
	if rec.durs[1] != 20*time.Minute {
		t.Fatalf("second e2e = %v, want 20m (10m queue wait + 10m work)", rec.durs[1])
	}
}

func TestRunBoundCorrelation(t *testing.T) {
	e := sim.New(epoch)
	jr := obslog.New(e, 0)
	s := New(e, Config{Workers: 1, Journal: jr})
	file := Tenant{Beamline: "bl7", Class: ClassFile, Weight: 1}

	runCampaign(e, s, func(p *sim.Proc) {
		s.Submit(context.Background(), file, "f", func(ctx context.Context, p *sim.Proc) {
			// Simulate what flow.Start does: assign a run ID into the ctx
			// and notify start observers.
			s.RunStarted(obslog.WithRun(ctx, 42), "f")
		})
	})

	evs := jr.Events(obslog.Filter{Component: "sched", Run: 42})
	if len(evs) != 1 || evs[0].Msg != "run bound" {
		t.Fatalf("run-bound events = %+v", evs)
	}
	if evs[0].Tenant != "bl7/file" {
		t.Fatalf("bound event tenant = %q", evs[0].Tenant)
	}
	// A context without an item is a no-op, not a panic.
	s.RunStarted(context.Background(), "f")
}

func TestDeterministicDecisionStream(t *testing.T) {
	journalBytes := func() []byte {
		e := sim.New(epoch)
		burn := &stubBurn{}
		jr := obslog.New(e, 0)
		s := New(e, Config{
			Workers: 2, Reserved: 1,
			Journal: jr,
			Burn:    burn,
			Admission: Admission{
				Enabled:           true,
				GuardObjectives:   []string{"g"},
				MaxQueuePerTenant: 4,
				DeferDelay:        2 * time.Minute,
				MaxDefers:         2,
			},
		})
		tenants := []Tenant{
			{Beamline: "bl0", Class: ClassStreaming, Weight: 1},
			{Beamline: "bl0", Class: ClassFile, Weight: 3},
			{Beamline: "bl1", Class: ClassFile, Weight: 1},
		}
		for _, t := range tenants {
			s.Register(t)
		}
		runCampaign(e, s, func(p *sim.Proc) {
			for i := 0; i < 12; i++ {
				if i == 6 {
					burn.set("g", 2.5)
				}
				if i == 9 {
					burn.set("g", 0)
				}
				for _, t := range tenants {
					dur := time.Minute
					if t.Class == ClassStreaming {
						dur = 2 * time.Second
					}
					s.Submit(context.Background(), t, string(t.Class), func(ctx context.Context, p *sim.Proc) {
						p.Sleep(dur)
					})
				}
				p.Sleep(90 * time.Second)
			}
		})
		var buf bytes.Buffer
		for _, ev := range jr.Events(obslog.Filter{Component: "sched"}) {
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}

	a, b := journalBytes(), journalBytes()
	if len(a) == 0 {
		t.Fatal("empty decision stream")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("scheduler decision stream is not deterministic")
	}
}

func TestSnapshotHandler(t *testing.T) {
	e := sim.New(epoch)
	s := New(e, Config{Workers: 3, Reserved: 1})
	s.Register(Tenant{Beamline: "bl0", Class: ClassStreaming, Weight: 2})

	runCampaign(e, s, func(p *sim.Proc) {
		s.Submit(context.Background(), Tenant{Beamline: "bl0", Class: ClassStreaming, Weight: 2}, "s",
			func(ctx context.Context, p *sim.Proc) { p.Sleep(time.Second) })
	})

	req := httptest.NewRequest("GET", "/api/sched", nil)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("GET status = %d", rr.Code)
	}
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 3 || rep.Reserved != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != "bl0/streaming" || rep.Tenants[0].Completed != 1 {
		t.Fatalf("tenants = %+v", rep.Tenants)
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/api/sched", nil))
	if rr.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rr.Code)
	}
}

func TestConfigClamps(t *testing.T) {
	e := sim.New(epoch)
	s := New(e, Config{Workers: 0, Reserved: 5})
	if s.cfg.Workers != 1 || s.cfg.Reserved != 0 {
		t.Fatalf("clamped workers=%d reserved=%d, want 1/0", s.cfg.Workers, s.cfg.Reserved)
	}
	// Weight below 1 clamps; re-registering updates the weight.
	s.Register(Tenant{Beamline: "b", Class: ClassFile, Weight: 0})
	if s.tenants[0].t.Weight != 1 {
		t.Fatalf("weight = %g, want clamped to 1", s.tenants[0].t.Weight)
	}
	s.Register(Tenant{Beamline: "b", Class: ClassFile, Weight: 4})
	if len(s.tenants) != 1 || s.tenants[0].t.Weight != 4 {
		t.Fatalf("re-register: %+v", s.tenants)
	}
	// Submitting to a closed scheduler sheds instead of hanging Drain.
	s.StartWorkers()
	e.Go("producer", func(p *sim.Proc) {
		s.Drain(p)
		if s.Submit(context.Background(), Tenant{Beamline: "b", Class: ClassFile, Weight: 4}, "f",
			func(ctx context.Context, p *sim.Proc) {}) {
			t.Error("submit after close accepted")
		}
	})
	e.Run()
	if s.Snapshot().TotalShed != 1 {
		t.Fatalf("TotalShed = %d, want 1", s.Snapshot().TotalShed)
	}
}

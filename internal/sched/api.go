package sched

import (
	"encoding/json"
	"net/http"
)

// Handler serves the live scheduler report as JSON for GET /api/sched:
// per-tenant queue depth, fair-share weight, shed/defer counters, and
// end-to-end attainment.
func (s *Scheduler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rep := s.Snapshot()
		if rep.Tenants == nil {
			rep.Tenants = []TenantReport{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
}

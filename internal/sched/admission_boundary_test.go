package sched

import (
	"context"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestDeferShedBoundary drives a single guarded file run through the
// dispatch-time admission state machine and pins the defer→shed boundary:
// the guard rate is read live at every dispatch attempt, a run defers
// while attempts remain, and sheds the moment either the defer budget or
// the ShedAfter age is exhausted. DeferDelay is 1m throughout, so retry
// k happens at t≈k minutes.
func TestDeferShedBoundary(t *testing.T) {
	cases := []struct {
		name      string
		rate      float64       // burn rate while the guard is hot
		clearAt   time.Duration // 0 = never clears
		maxDefers int
		shedAfter time.Duration
		streaming bool

		wantDeferred int
		wantShed     int
		wantRan      int
	}{
		{
			// Rate below GuardRate never trips: straight dispatch.
			name: "under threshold dispatches", rate: 1.99,
			maxDefers: 2, wantRan: 1,
		},
		{
			// The guard trips at exactly GuardRate (>=, not >).
			name: "at threshold defers", rate: 2, clearAt: 30 * time.Second,
			maxDefers: 2, wantDeferred: 1, wantRan: 1,
		},
		{
			// Guard clears after one defer: the retry dispatches.
			name: "clears before budget", rate: 5, clearAt: 30 * time.Second,
			maxDefers: 2, wantDeferred: 1, wantRan: 1,
		},
		{
			// Guard clears after exactly MaxDefers defers: the final retry
			// finds it quiet and still runs — the budget bounds defers, it
			// does not doom the run.
			name: "clears exactly at budget", rate: 5, clearAt: 90 * time.Second,
			maxDefers: 2, wantDeferred: 2, wantRan: 1,
		},
		{
			// Guard still hot at the MaxDefers+1'th attempt: shed.
			name: "persists past budget", rate: 5,
			maxDefers: 2, wantDeferred: 2, wantShed: 1,
		},
		{
			// Age-based shed fires before the defer budget is spent: at the
			// third attempt (t=2m ≥ ShedAfter=90s) the run sheds with
			// defers still below the 10-defer budget.
			name: "age sheds first", rate: 5,
			maxDefers: 10, shedAfter: 90 * time.Second,
			wantDeferred: 2, wantShed: 1,
		},
		{
			// Streaming is never deferred or shed, however hot the guard.
			name: "streaming immune", rate: 5, streaming: true,
			maxDefers: 2, wantRan: 1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := sim.New(epoch)
			burn := &stubBurn{}
			s := New(e, Config{
				Workers: 1,
				Burn:    burn,
				Admission: Admission{
					Enabled:         true,
					GuardObjectives: []string{"g"},
					GuardRate:       2,
					DeferDelay:      time.Minute,
					MaxDefers:       tc.maxDefers,
					ShedAfter:       tc.shedAfter,
				},
			})
			tenant := Tenant{Beamline: "bl0", Class: ClassFile, Weight: 1}
			if tc.streaming {
				tenant.Class = ClassStreaming
			}
			s.Register(tenant)

			ran := 0
			runCampaign(e, s, func(p *sim.Proc) {
				burn.set("g", tc.rate)
				s.Submit(context.Background(), tenant, "f",
					func(ctx context.Context, p *sim.Proc) { ran++ })
				if tc.clearAt > 0 {
					p.Sleep(tc.clearAt)
					burn.set("g", 0)
				}
			})

			rep := s.Snapshot()
			ts := rep.Tenants[0]
			if ts.Deferred != tc.wantDeferred || ts.Shed != tc.wantShed || ran != tc.wantRan {
				t.Fatalf("deferred=%d shed=%d ran=%d, want %d/%d/%d",
					ts.Deferred, ts.Shed, ran, tc.wantDeferred, tc.wantShed, tc.wantRan)
			}
		})
	}
}

package scicat

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func ds(scan, sample string, at time.Time) Dataset {
	return Dataset{ScanID: scan, Sample: sample, Beamline: "8.3.2", CreatedAt: at,
		SizeBytes: 20 << 30, Owner: "als"}
}

var t0 = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestIngestAssignsPID(t *testing.T) {
	c := New()
	d1, err := c.Ingest(ds("s1", "feather", t0))
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := c.Ingest(ds("s2", "proppant", t0))
	if d1.PID == "" || d1.PID == d2.PID {
		t.Fatalf("pids: %q %q", d1.PID, d2.PID)
	}
	got, err := c.Get(d1.PID)
	if err != nil || got.ScanID != "s1" {
		t.Fatalf("get: %+v %v", got, err)
	}
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
}

func TestIngestRequiresScanID(t *testing.T) {
	c := New()
	if _, err := c.Ingest(Dataset{Sample: "x"}); err == nil {
		t.Fatal("missing scan_id should be rejected")
	}
}

func TestGetMissing(t *testing.T) {
	c := New()
	if _, err := c.Get("nope"); err == nil {
		t.Fatal("missing pid should error")
	}
}

func TestSearchFilters(t *testing.T) {
	c := New()
	c.Ingest(ds("s1", "chicken feather", t0))
	c.Ingest(ds("s2", "sandgrouse feather", t0.Add(time.Hour)))
	c.Ingest(Dataset{ScanID: "s3", Sample: "proppant", Beamline: "7.3.3", CreatedAt: t0.Add(2 * time.Hour)})

	if got := c.Search(Query{Sample: "feather"}); len(got) != 2 {
		t.Fatalf("sample search = %d", len(got))
	}
	if got := c.Search(Query{Sample: "FEATHER"}); len(got) != 2 {
		t.Fatal("sample search should be case-insensitive")
	}
	if got := c.Search(Query{Beamline: "7.3.3"}); len(got) != 1 || got[0].ScanID != "s3" {
		t.Fatalf("beamline search = %v", got)
	}
	if got := c.Search(Query{ScanID: "s2"}); len(got) != 1 {
		t.Fatalf("scan search = %d", len(got))
	}
	if got := c.Search(Query{After: t0.Add(30 * time.Minute)}); len(got) != 2 {
		t.Fatalf("after search = %d", len(got))
	}
	if got := c.Search(Query{Before: t0.Add(30 * time.Minute)}); len(got) != 1 {
		t.Fatalf("before search = %d", len(got))
	}
	if got := c.Search(Query{}); len(got) != 3 {
		t.Fatalf("match-all = %d", len(got))
	}
}

func TestSearchReturnsCopies(t *testing.T) {
	c := New()
	c.Ingest(ds("s1", "x", t0))
	got := c.Search(Query{})[0]
	got.Sample = "mutated"
	if c.Search(Query{})[0].Sample == "mutated" {
		t.Fatal("search results should be copies")
	}
}

func TestSamples(t *testing.T) {
	c := New()
	c.Ingest(ds("s1", "b", t0))
	c.Ingest(ds("s2", "a", t0))
	c.Ingest(ds("s3", "a", t0))
	s := c.Samples()
	if len(s) != 2 || s[0] != "a" || s[1] != "b" {
		t.Fatalf("samples = %v", s)
	}
}

func TestHTTPIngestAndSearch(t *testing.T) {
	c := New()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	body, _ := json.Marshal(ds("s1", "feather", t0))
	resp, err := http.Post(srv.URL+"/api/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var stored Dataset
	json.NewDecoder(resp.Body).Decode(&stored)
	if stored.PID == "" {
		t.Fatal("no pid assigned")
	}

	r2, err := http.Get(srv.URL + "/api/datasets?sample=feather")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var results []Dataset
	json.NewDecoder(r2.Body).Decode(&results)
	if len(results) != 1 || results[0].ScanID != "s1" {
		t.Fatalf("search = %v", results)
	}

	r3, err := http.Get(srv.URL + "/api/datasets/" + stored.PID)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", r3.StatusCode)
	}

	r4, err := http.Get(srv.URL + "/api/datasets/missing")
	if err != nil {
		t.Fatal(err)
	}
	defer r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("missing status %d", r4.StatusCode)
	}

	// Bad ingest bodies.
	r5, err := http.Post(srv.URL+"/api/datasets", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer r5.Body.Close()
	if r5.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status %d", r5.StatusCode)
	}
	r6, err := http.Post(srv.URL+"/api/datasets", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	defer r6.Body.Close()
	if r6.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty dataset status %d", r6.StatusCode)
	}
}

// Package scicat is the metadata catalog of the access layer (SciCat's
// role in the paper): every scan's instrument metadata is ingested as a
// dataset record with a persistent identifier, and users search by sample,
// beamline, or time range. Records are held in memory with an HTTP API in
// front, which is all the reproduction's flows and examples need.
package scicat

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Dataset is one cataloged scan.
type Dataset struct {
	PID        string            `json:"pid"`
	ScanID     string            `json:"scan_id"`
	Sample     string            `json:"sample"`
	Beamline   string            `json:"beamline"`
	Owner      string            `json:"owner"`
	SizeBytes  int64             `json:"size_bytes"`
	CreatedAt  time.Time         `json:"created_at"`
	SourcePath string            `json:"source_path"`
	Fields     map[string]string `json:"fields,omitempty"`
}

// Catalog is an in-memory SciCat.
type Catalog struct {
	mu     sync.RWMutex
	byPID  map[string]*Dataset // guarded by mu
	order  []string            // guarded by mu
	nextID int                 // guarded by mu
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{byPID: map[string]*Dataset{}}
}

// Ingest registers a dataset, assigning a persistent identifier, and
// returns the stored record. ScanID is required.
func (c *Catalog) Ingest(d Dataset) (*Dataset, error) {
	if d.ScanID == "" {
		return nil, fmt.Errorf("scicat: dataset missing scan_id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	d.PID = fmt.Sprintf("als/8.3.2/%06d", c.nextID)
	stored := d
	c.byPID[d.PID] = &stored
	c.order = append(c.order, d.PID)
	return &stored, nil
}

// Get returns a dataset by PID.
func (c *Catalog) Get(pid string) (*Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.byPID[pid]
	if !ok {
		return nil, fmt.Errorf("scicat: no dataset %q", pid)
	}
	cp := *d
	return &cp, nil
}

// Query filters datasets; zero values match everything.
type Query struct {
	Sample   string
	Beamline string
	ScanID   string
	After    time.Time
	Before   time.Time
}

// Search returns matching datasets in ingestion order.
func (c *Catalog) Search(q Query) []*Dataset {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Dataset
	for _, pid := range c.order {
		d := c.byPID[pid]
		if q.Sample != "" && !strings.Contains(strings.ToLower(d.Sample), strings.ToLower(q.Sample)) {
			continue
		}
		if q.Beamline != "" && d.Beamline != q.Beamline {
			continue
		}
		if q.ScanID != "" && d.ScanID != q.ScanID {
			continue
		}
		if !q.After.IsZero() && d.CreatedAt.Before(q.After) {
			continue
		}
		if !q.Before.IsZero() && !d.CreatedAt.Before(q.Before) {
			continue
		}
		cp := *d
		out = append(out, &cp)
	}
	return out
}

// Count returns the number of cataloged datasets.
func (c *Catalog) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byPID)
}

// Samples returns the distinct sample names, sorted.
func (c *Catalog) Samples() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for _, d := range c.byPID {
		seen[d.Sample] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Handler exposes the catalog over HTTP:
//
//	POST /api/datasets           → ingest (JSON body)
//	GET  /api/datasets?sample=&beamline=&scan_id=  → search
//	GET  /api/datasets/{pid...}  → fetch one
func (c *Catalog) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/datasets", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var d Dataset
			if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			stored, err := c.Ingest(d)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, http.StatusCreated, stored)
		case http.MethodGet:
			q := Query{
				Sample:   r.URL.Query().Get("sample"),
				Beamline: r.URL.Query().Get("beamline"),
				ScanID:   r.URL.Query().Get("scan_id"),
			}
			writeJSON(w, http.StatusOK, c.Search(q))
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/api/datasets/", func(w http.ResponseWriter, r *http.Request) {
		pid := strings.TrimPrefix(r.URL.Path, "/api/datasets/")
		d, err := c.Get(pid)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, d)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

package transfer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/storage"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

type fixture struct {
	e   *sim.Engine
	net *simnet.Network
	svc *Service
	als *storage.Store
	cfs *storage.Store
}

func newFixture() *fixture {
	e := sim.New(epoch)
	net := simnet.New(e)
	net.AddLink("als", "nersc", 10*simnet.Gbps, 5*time.Millisecond)
	svc := NewService(e, net)
	als := storage.New(e, storage.Config{Name: "als-data", WriteBW: 2 << 30, ReadBW: 2 << 30})
	cfs := storage.New(e, storage.Config{Name: "cfs", WriteBW: 1 << 30, ReadBW: 1 << 30})
	svc.AddEndpoint("als", "als", als)
	svc.AddEndpoint("cfs", "nersc", cfs)
	return &fixture{e: e, net: net, svc: svc, als: als, cfs: cfs}
}

func TestSimpleTransfer(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "scan/raw.dxf", 20<<30, "sha:abc")
		task, err := fx.svc.Submit(nil, p, "raw to cfs", "als", "cfs", []string{"scan/raw.dxf"})
		if err != nil {
			t.Error(err)
		}
		if task.State != Succeeded || task.Files != 1 || task.Bytes != 20<<30 {
			t.Errorf("task = %+v", task)
		}
		got, err := fx.cfs.Stat("scan/raw.dxf")
		if err != nil || got.Checksum != "sha:abc" {
			t.Errorf("destination file: %v %v", got, err)
		}
		if task.EffectiveBandwidth() <= 0 {
			t.Error("no effective bandwidth recorded")
		}
	})
	fx.e.Run()
}

func TestDirectoryTransfer(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "scan1/a", 10, "x")
		fx.als.Put(p, "scan1/b", 20, "y")
		fx.als.Put(p, "scan2/c", 30, "z")
		task, err := fx.svc.Submit(nil, p, "dir", "als", "cfs", []string{"scan1/"})
		if err != nil {
			t.Error(err)
		}
		if task.Files != 2 || task.Bytes != 30 {
			t.Errorf("dir transfer moved %d files %d bytes", task.Files, task.Bytes)
		}
		if _, err := fx.cfs.Stat("scan2/c"); err == nil {
			t.Error("unrelated file transferred")
		}
	})
	fx.e.Run()
}

func TestMissingSourceFails(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		task, err := fx.svc.Submit(nil, p, "missing", "als", "cfs", []string{"nope"})
		if err == nil || task.State != Failed {
			t.Error("missing source should fail the task")
		}
	})
	fx.e.Run()
}

func TestMissingDirectoryFails(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		_, err := fx.svc.Submit(nil, p, "missing dir", "als", "cfs", []string{"empty/"})
		if err == nil {
			t.Error("empty directory prefix should fail")
		}
	})
	fx.e.Run()
}

func TestUnknownEndpoint(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		if _, err := fx.svc.Submit(nil, p, "x", "bogus", "cfs", nil); err == nil {
			t.Error("unknown src endpoint should error")
		}
		if _, err := fx.svc.Submit(nil, p, "x", "als", "bogus", nil); err == nil {
			t.Error("unknown dst endpoint should error")
		}
	})
	fx.e.Run()
}

func TestTransientFaultRetried(t *testing.T) {
	fx := newFixture()
	failures := 2
	fx.svc.Fault = func(task *Task, path string, attempt int) error {
		if attempt < failures {
			return fmt.Errorf("transient network blip on %s", path)
		}
		return nil
	}
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "f", 100, "c")
		task, err := fx.svc.Submit(nil, p, "retry", "als", "cfs", []string{"f"})
		if err != nil {
			t.Errorf("should succeed after retries: %v", err)
		}
		if task.Retries != 2 {
			t.Errorf("retries = %d, want 2", task.Retries)
		}
	})
	fx.e.Run()
}

func TestRetriesExhausted(t *testing.T) {
	fx := newFixture()
	fx.svc.MaxRetries = 1
	fx.svc.Fault = func(task *Task, path string, attempt int) error {
		return fmt.Errorf("always down")
	}
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "f", 100, "c")
		task, err := fx.svc.Submit(nil, p, "doomed", "als", "cfs", []string{"f"})
		if err == nil || task.State != Failed {
			t.Error("exhausted retries should fail")
		}
		if !strings.Contains(task.Err, "retries exhausted") {
			t.Errorf("err = %q", task.Err)
		}
	})
	fx.e.Run()
}

func TestPermanentFaultNotRetried(t *testing.T) {
	fx := newFixture()
	attempts := 0
	fx.svc.Fault = func(task *Task, path string, attempt int) error {
		attempts++
		return faults.Errorf(faults.Permanent, "permission denied")
	}
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "f", 100, "c")
		_, err := fx.svc.Submit(nil, p, "denied", "als", "cfs", []string{"f"})
		if err == nil {
			t.Error("permanent fault should fail")
		}
	})
	fx.e.Run()
	if attempts != 1 {
		t.Fatalf("permanent fault attempted %d times, want 1", attempts)
	}
}

func TestRetryBackoffTiming(t *testing.T) {
	fx := newFixture()
	fx.svc.RetryDelay = 10 * time.Second
	fx.svc.Fault = func(task *Task, path string, attempt int) error {
		if attempt < 2 {
			return errors.New("blip")
		}
		return nil
	}
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "f", 0, "c")
		task, _ := fx.svc.Submit(nil, p, "backoff", "als", "cfs", []string{"f"})
		// Two backoffs: 10s + 20s = 30s minimum.
		if task.Duration() < 30*time.Second {
			t.Errorf("duration %v should include 30s of backoff", task.Duration())
		}
	})
	fx.e.Run()
}

func TestDeleteFailFastVsHanging(t *testing.T) {
	// The §5.3 incident: a burst of prune requests hits permission
	// denied. Legacy (failFast=false) hangs 5 minutes per bad path;
	// fixed (failFast=true) aborts immediately.
	run := func(failFast bool) time.Duration {
		fx := newFixture()
		fx.svc.Fault = func(task *Task, path string, attempt int) error {
			if strings.HasPrefix(path, "locked/") {
				return faults.Errorf(faults.Permanent, "permission denied")
			}
			return nil
		}
		var d time.Duration
		fx.e.Go("main", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				fx.als.Put(p, fmt.Sprintf("locked/%d", i), 10, "")
			}
			t0 := p.Now()
			fx.svc.Delete(nil, p, "prune", "als",
				[]string{"locked/0", "locked/1", "locked/2", "locked/3"}, failFast)
			d = p.Now().Sub(t0)
		})
		fx.e.Run()
		return d
	}
	slow := run(false)
	fast := run(true)
	if slow < 20*time.Minute {
		t.Errorf("legacy hang should take ≥20min, got %v", slow)
	}
	if fast > time.Minute {
		t.Errorf("fail-fast should abort quickly, got %v", fast)
	}
}

func TestDeleteSuccess(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "a", 10, "")
		fx.als.Put(p, "b", 10, "")
		task, err := fx.svc.Delete(nil, p, "prune", "als", []string{"a", "b"}, true)
		if err != nil || task.State != Succeeded || task.Files != 2 {
			t.Errorf("delete task %+v err %v", task, err)
		}
		if fx.als.Count() != 0 {
			t.Error("files not deleted")
		}
	})
	fx.e.Run()
}

func TestChecksumVerifyDetectsCorruption(t *testing.T) {
	// Simulate a destination that corrupts checksums by injecting a
	// post-write mutation through the fault hook is not possible, so
	// verify the positive path plus the service accounting instead.
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "ok", 10, "sha:1")
		fx.svc.Submit(nil, p, "t1", "als", "cfs", []string{"ok"})
	})
	fx.e.Run()
	if fx.svc.SucceededCount() != 1 || len(fx.svc.Tasks()) != 1 {
		t.Fatalf("accounting: %d/%d", fx.svc.SucceededCount(), len(fx.svc.Tasks()))
	}
}

func TestSameSiteTransferSkipsWAN(t *testing.T) {
	e := sim.New(epoch)
	net := simnet.New(e) // no links at all
	svc := NewService(e, net)
	a := storage.New(e, storage.Config{Name: "a", WriteBW: 1 << 40, ReadBW: 1 << 40})
	b := storage.New(e, storage.Config{Name: "b", WriteBW: 1 << 40, ReadBW: 1 << 40})
	svc.AddEndpoint("cfs", "nersc", a)
	svc.AddEndpoint("pscratch", "nersc", b)
	e.Go("main", func(p *sim.Proc) {
		a.Put(p, "f", 100, "c")
		if _, err := svc.Submit(nil, p, "stage", "cfs", "pscratch", []string{"f"}); err != nil {
			t.Errorf("same-site transfer should not need a WAN link: %v", err)
		}
	})
	e.Run()
}

func TestSubmitCancelledMidRetry(t *testing.T) {
	// Cancelling the ctx aborts the per-file retry loop after the
	// in-flight backoff tick instead of exhausting all retries.
	fx := newFixture()
	fx.svc.MaxRetries = 10
	fx.svc.RetryDelay = 10 * time.Second
	attempts := 0
	fx.svc.Fault = func(task *Task, path string, attempt int) error {
		attempts++
		return errors.New("still down")
	}
	ctx, cancel := context.WithCancel(context.Background())
	fx.e.Go("operator", func(p *sim.Proc) {
		p.Sleep(15 * time.Second)
		cancel()
	})
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "f", 100, "c")
		task, err := fx.svc.Submit(ctx, p, "cancelled", "als", "cfs", []string{"f"})
		if err == nil || task.State != Failed {
			t.Error("cancelled transfer should fail the task")
		}
		if faults.Classify(err) != faults.Cancelled {
			t.Errorf("err %v classifies %v, want cancelled", err, faults.Classify(err))
		}
	})
	fx.e.Run()
	// Attempt at t=0 fails, backoff to t=10, attempt fails, backoff wakes
	// at t=30 after the t=15 cancel: no third attempt.
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (aborted after cancel)", attempts)
	}
}

func TestDeleteCancelledBetweenPaths(t *testing.T) {
	fx := newFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "a", 10, "")
		task, err := fx.svc.Delete(ctx, p, "prune", "als", []string{"a"}, true)
		if err == nil || task.State != Failed {
			t.Error("delete on dead ctx should fail")
		}
		if faults.Classify(err) != faults.Cancelled {
			t.Errorf("classify = %v", faults.Classify(err))
		}
		if fx.als.Count() != 1 {
			t.Error("no file should be deleted after cancellation")
		}
	})
	fx.e.Run()
}

func TestMissingSourceClassifiesPermanent(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		_, err := fx.svc.Submit(nil, p, "missing", "als", "cfs", []string{"nope"})
		if faults.Classify(err) != faults.Permanent {
			t.Errorf("missing source classifies %v, want permanent", faults.Classify(err))
		}
		_, err = fx.svc.Submit(nil, p, "x", "bogus", "cfs", nil)
		if faults.Classify(err) != faults.Permanent {
			t.Errorf("unknown endpoint classifies %v, want permanent", faults.Classify(err))
		}
	})
	fx.e.Run()
}

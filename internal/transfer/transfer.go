// Package transfer implements the Globus Transfer analogue the file-based
// branch rides on: endpoints bound to (site, store) pairs, asynchronous
// transfer tasks that move file sets over the simulated WAN with
// per-file checksum verification, bounded retries with exponential
// backoff, and fault injection for the failure-mode experiments (the §5.3
// prune-burst incident). Task lifecycle mirrors the Globus states:
// ACTIVE → SUCCEEDED / FAILED.
package transfer

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/obslog"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/trace"
)

// TaskState is the lifecycle state of a transfer task.
type TaskState string

// Task states, matching the Globus Transfer vocabulary.
const (
	Active    TaskState = "ACTIVE"
	Succeeded TaskState = "SUCCEEDED"
	Failed    TaskState = "FAILED"
)

// Endpoint binds a site name (for WAN routing) to a storage tier.
type Endpoint struct {
	Name  string
	Site  string
	Store *storage.Store
}

// Task records one transfer request and its outcome.
type Task struct {
	ID        int
	Label     string
	Src, Dst  string // endpoint names
	Paths     []string
	State     TaskState
	Err       string
	Bytes     int64
	Files     int
	Retries   int
	Submitted time.Time
	Completed time.Time
}

// Duration returns the task's wall-clock (virtual) duration.
func (t *Task) Duration() time.Duration { return t.Completed.Sub(t.Submitted) }

// EffectiveBandwidth returns achieved bytes/second (0 for instant tasks).
func (t *Task) EffectiveBandwidth() float64 {
	d := t.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(t.Bytes) / d
}

// FaultFunc may return an error to inject a failure for a path; nil means
// no fault. It is consulted once per file per attempt.
type FaultFunc func(task *Task, path string, attempt int) error

// Service is the transfer orchestrator.
type Service struct {
	e         *sim.Engine
	net       *simnet.Network
	endpoints map[string]*Endpoint
	tasks     []*Task
	nextID    int

	// MaxRetries bounds per-file retry attempts (default 2).
	MaxRetries int
	// RetryDelay is the base backoff, doubled per attempt (default 10s).
	RetryDelay time.Duration
	// Fault, if set, injects failures.
	Fault FaultFunc
	// VerifyChecksums enables end-to-end integrity verification, as the
	// production deployment does.
	VerifyChecksums bool
	// Observer, if set, is invoked with every finished task (succeeded or
	// failed) — the hook the SLO engine's transfer-success objective feeds
	// from. ctx is the submitting run's context, so alerts correlate.
	Observer func(ctx context.Context, t *Task)
}

// NewService creates a transfer service over the network.
func NewService(e *sim.Engine, net *simnet.Network) *Service {
	return &Service{
		e: e, net: net,
		endpoints:       map[string]*Endpoint{},
		MaxRetries:      2,
		RetryDelay:      10 * time.Second,
		VerifyChecksums: true,
	}
}

// AddEndpoint registers an endpoint.
func (s *Service) AddEndpoint(name, site string, store *storage.Store) *Endpoint {
	ep := &Endpoint{Name: name, Site: site, Store: store}
	s.endpoints[name] = ep
	return ep
}

// Endpoint looks up an endpoint by name.
func (s *Service) Endpoint(name string) (*Endpoint, error) {
	ep, ok := s.endpoints[name]
	if !ok {
		return nil, faults.Errorf(faults.Permanent, "transfer: unknown endpoint %q", name)
	}
	return ep, nil
}

// Tasks returns all submitted tasks in submission order.
func (s *Service) Tasks() []*Task { return s.tasks }

// SucceededCount returns the number of succeeded tasks.
func (s *Service) SucceededCount() int {
	n := 0
	for _, t := range s.tasks {
		if t.State == Succeeded {
			n++
		}
	}
	return n
}

// Submit performs a transfer of the given paths (each may be an exact path
// or a directory prefix ending in "/", which transfers every file under
// it) from src to dst, blocking the calling process until the task
// completes. It returns the finished task; the error mirrors task failure.
// ctx cancellation aborts the task between files and between retry
// attempts (nil means context.Background); the resulting error classifies
// as faults.Cancelled.
func (s *Service) Submit(ctx context.Context, p *sim.Proc, label, src, dst string, paths []string) (*Task, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	srcEP, err := s.Endpoint(src)
	if err != nil {
		return nil, faults.Wrap(faults.Permanent, err)
	}
	dstEP, err := s.Endpoint(dst)
	if err != nil {
		return nil, faults.Wrap(faults.Permanent, err)
	}
	s.nextID++
	task := &Task{
		ID: s.nextID, Label: label, Src: src, Dst: dst,
		Paths: paths, State: Active, Submitted: p.Now(),
	}
	s.tasks = append(s.tasks, task)
	obslog.Debug(ctx, "transfer", "task submitted",
		obslog.F("task", task.ID), obslog.F("label", label),
		obslog.F("src", src), obslog.F("dst", dst), obslog.F("paths", len(paths)))

	files, err := expand(srcEP.Store, paths)
	if err != nil {
		// A missing source cannot be fixed by retrying the transfer.
		return s.fail(ctx, p, task, faults.Wrap(faults.Permanent, err))
	}
	// Per-file copy spans hang off whatever span the caller's context
	// carries (typically the flow task), aggregating under one "copy"
	// stage while keeping each path visible in the trace.
	parent := trace.FromContext(ctx)
	for _, f := range files {
		if cerr := ctx.Err(); cerr != nil {
			return s.fail(ctx, p, task, fmt.Errorf("transfer: %s aborted: %w", label, cerr))
		}
		span := parent.StartChildStage("copy "+f.Path, "copy", p.Now())
		err := s.moveFile(ctx, p, task, srcEP, dstEP, f)
		span.End(p.Now())
		if err != nil {
			return s.fail(ctx, p, task, err)
		}
		task.Files++
		task.Bytes += f.Size
	}
	return s.succeed(ctx, p, task), nil
}

// succeed finalizes a task, journals it, and notifies the observer.
func (s *Service) succeed(ctx context.Context, p *sim.Proc, task *Task) *Task {
	task.State = Succeeded
	task.Completed = p.Now()
	obslog.Info(ctx, "transfer", "task succeeded",
		obslog.F("task", task.ID), obslog.F("label", task.Label),
		obslog.F("files", task.Files), obslog.F("bytes", task.Bytes),
		obslog.F("retries", task.Retries), obslog.F("duration", task.Duration()))
	if s.Observer != nil {
		s.Observer(ctx, task)
	}
	return task
}

func (s *Service) fail(ctx context.Context, p *sim.Proc, task *Task, err error) (*Task, error) {
	task.State = Failed
	task.Err = err.Error()
	task.Completed = p.Now()
	obslog.Error(ctx, "transfer", "task failed",
		obslog.F("task", task.ID), obslog.F("label", task.Label),
		obslog.F("class", string(faults.Classify(err))), obslog.F("err", err))
	if s.Observer != nil {
		s.Observer(ctx, task)
	}
	return task, err
}

// expand resolves paths (exact or "dir/" prefixes) to file records.
func expand(st *storage.Store, paths []string) ([]*storage.File, error) {
	var out []*storage.File
	for _, path := range paths {
		if strings.HasSuffix(path, "/") {
			matched := false
			for _, f := range st.List() {
				if strings.HasPrefix(f.Path, path) {
					out = append(out, f)
					matched = true
				}
			}
			if !matched {
				return nil, &storage.ErrNotFound{Store: st.Name, Path: path}
			}
			continue
		}
		f, err := st.Stat(path)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// moveFile transfers one file with retry/backoff and checksum verify.
// Retry decisions flow through faults.Classify: only Transient errors are
// re-attempted, and ctx cancellation is observed after each backoff sleep.
func (s *Service) moveFile(ctx context.Context, p *sim.Proc, task *Task, src, dst *Endpoint, f *storage.File) error {
	var lastErr error
	for attempt := 0; attempt <= s.MaxRetries; attempt++ {
		if attempt > 0 {
			task.Retries++
			backoff := s.RetryDelay << (attempt - 1)
			obslog.Warn(ctx, "transfer", "file retrying",
				obslog.F("path", f.Path), obslog.F("attempt", attempt+1),
				obslog.F("backoff", backoff),
				obslog.F("class", string(faults.Classify(lastErr))), obslog.F("err", lastErr))
			p.Sleep(backoff)
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("transfer: %s: retry aborted: %w", f.Path, cerr)
			}
		}
		lastErr = s.attemptFile(p, task, src, dst, f, attempt)
		if lastErr == nil {
			return nil
		}
		if !faults.Retryable(lastErr) {
			obslog.Warn(ctx, "transfer", "file fault not retryable",
				obslog.F("path", f.Path),
				obslog.F("class", string(faults.Classify(lastErr))), obslog.F("err", lastErr))
			return lastErr
		}
	}
	return fmt.Errorf("transfer: %s: retries exhausted: %w", f.Path, lastErr)
}

func (s *Service) attemptFile(p *sim.Proc, task *Task, src, dst *Endpoint, f *storage.File, attempt int) error {
	if s.Fault != nil {
		if err := s.Fault(task, f.Path, attempt); err != nil {
			return err
		}
	}
	// Read at source, move over WAN, write at destination.
	rec, err := src.Store.Get(p, f.Path)
	if err != nil {
		return err
	}
	if src.Site != dst.Site {
		if _, err := s.net.Transfer(p, src.Site, dst.Site, rec.Size); err != nil {
			return err
		}
	}
	if err := dst.Store.Put(p, f.Path, rec.Size, rec.Checksum); err != nil {
		return err
	}
	if s.VerifyChecksums {
		got, err := dst.Store.Stat(f.Path)
		if err != nil {
			return err
		}
		if got.Checksum != rec.Checksum {
			// A corrupted write may succeed on re-copy: Transient.
			return faults.Errorf(faults.Transient, "transfer: %s: checksum mismatch after write", f.Path)
		}
	}
	return nil
}

// Delete removes paths on an endpoint (the "prune" request type from the
// incident study), honoring fault injection. Unlike Submit it fails fast
// on the first error when FailFast is true — the fix the paper describes —
// and otherwise continues through the batch, accumulating hung time.
func (s *Service) Delete(ctx context.Context, p *sim.Proc, label, endpoint string, paths []string, failFast bool) (*Task, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ep, err := s.Endpoint(endpoint)
	if err != nil {
		return nil, faults.Wrap(faults.Permanent, err)
	}
	s.nextID++
	task := &Task{ID: s.nextID, Label: label, Src: endpoint, Dst: endpoint,
		Paths: paths, State: Active, Submitted: p.Now()}
	s.tasks = append(s.tasks, task)

	var firstErr error
	for _, path := range paths {
		if cerr := ctx.Err(); cerr != nil {
			return s.fail(ctx, p, task, fmt.Errorf("transfer: %s aborted: %w", label, cerr))
		}
		if s.Fault != nil {
			if ferr := s.Fault(task, path, 0); ferr != nil {
				if failFast {
					return s.fail(ctx, p, task, ferr)
				}
				if firstErr == nil {
					firstErr = ferr
				}
				// Legacy behaviour: the job hangs on the error,
				// holding its slot while it times out.
				p.Sleep(5 * time.Minute)
				continue
			}
		}
		p.Sleep(200 * time.Millisecond) // per-delete API call
		if err := ep.Store.Delete(path); err != nil {
			if failFast {
				return s.fail(ctx, p, task, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		task.Files++
	}
	if firstErr != nil {
		return s.fail(ctx, p, task, firstErr)
	}
	return s.succeed(ctx, p, task), nil
}

package transfer

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestSubmitRecordsCopySpans: each file moved produces one "copy" child
// span on the caller's context span, and the spans cover the task's whole
// duration (transfers are sequential, so copy time sums to task time).
func TestSubmitRecordsCopySpans(t *testing.T) {
	fx := newFixture()
	root := trace.NewRoot("run", epoch)
	ctx := trace.NewContext(context.Background(), root)
	var task *Task
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "scan/a.dxf", 10<<30, "sha:a")
		fx.als.Put(p, "scan/b.dxf", 20<<30, "sha:b")
		task, _ = fx.svc.Submit(ctx, p, "raw", "als", "cfs", []string{"scan/"})
	})
	fx.e.Run()
	if task.State != Succeeded {
		t.Fatalf("task = %+v", task)
	}
	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("copy spans = %d, want one per file", len(kids))
	}
	var sum time.Duration
	for _, sp := range kids {
		if sp.Stage() != "copy" || !sp.Ended() {
			t.Fatalf("span %q stage=%q ended=%v", sp.Name(), sp.Stage(), sp.Ended())
		}
		sum += sp.Duration()
	}
	if sum != task.Duration() {
		t.Fatalf("copy spans sum %v != task duration %v", sum, task.Duration())
	}
	if kids[0].Name() != "copy scan/a.dxf" || kids[1].Name() != "copy scan/b.dxf" {
		t.Fatalf("span names = %q, %q", kids[0].Name(), kids[1].Name())
	}
}

// TestFailedCopySpanCloses: a file that exhausts retries still closes its
// span, so failed tasks leave no open spans in the trace.
func TestFailedCopySpanCloses(t *testing.T) {
	fx := newFixture()
	fx.svc.Fault = func(task *Task, path string, attempt int) error {
		return errors.New("endpoint flapping") // plain errors classify transient
	}
	root := trace.NewRoot("run", epoch)
	ctx := trace.NewContext(context.Background(), root)
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "scan/a.dxf", 1<<20, "sha:a")
		fx.svc.Submit(ctx, p, "doomed", "als", "cfs", []string{"scan/a.dxf"})
	})
	fx.e.Run()
	kids := root.Children()
	if len(kids) != 1 || !kids[0].Ended() {
		t.Fatalf("failed copy span = %+v", kids)
	}
	// The span covers the retries and backoffs: 2 backoffs of 10s and 20s.
	if kids[0].Duration() < 30*time.Second {
		t.Fatalf("span %v should include retry backoffs", kids[0].Duration())
	}
}

// TestUntracedSubmitIsFree: with no span in the context, Submit works
// identically and records nothing.
func TestUntracedSubmitIsFree(t *testing.T) {
	fx := newFixture()
	fx.e.Go("main", func(p *sim.Proc) {
		fx.als.Put(p, "scan/a.dxf", 1<<20, "sha:a")
		task, err := fx.svc.Submit(context.Background(), p, "plain", "als", "cfs", []string{"scan/a.dxf"})
		if err != nil || task.State != Succeeded {
			t.Errorf("task = %+v err = %v", task, err)
		}
	})
	fx.e.Run()
}

package phantom

import (
	"testing"

	"repro/internal/vol"
)

func TestSheppLoganBasics(t *testing.T) {
	n := 64
	im := SheppLogan(n)
	if im.W != n || im.H != n {
		t.Fatalf("dims %dx%d", im.W, im.H)
	}
	lo, hi := im.MinMax()
	if lo < -1e-9 {
		t.Errorf("negative attenuation %v in Shepp-Logan", lo)
	}
	if hi <= 0.5 {
		t.Errorf("max %v too low; skull should be ~1", hi)
	}
	// Corners are outside the skull ellipse → zero.
	if im.At(0, 0) != 0 || im.At(n-1, n-1) != 0 {
		t.Error("corners should be background")
	}
	// Center is inside skull+brain: 1.0 - 0.8 + small = ~0.2 + inner detail.
	c := im.At(n/2, n/2)
	if c < 0.05 || c > 0.5 {
		t.Errorf("center value %v outside plausible brain range", c)
	}
}

func TestSheppLoganSymmetry(t *testing.T) {
	// The phantom is symmetric about the vertical axis.
	n := 128
	im := SheppLogan(n)
	var asym, total float64
	for y := 0; y < n; y++ {
		for x := 0; x < n/2; x++ {
			d := im.At(x, y) - im.At(n-1-x, y)
			asym += d * d
			total += im.At(x, y) * im.At(x, y)
		}
	}
	if total == 0 {
		t.Fatal("blank phantom")
	}
	// The phantom is only approximately mirror-symmetric: the three small
	// bottom ellipses sit at x = -0.08, 0, +0.06.
	if asym/total > 0.05 {
		t.Errorf("asymmetry ratio %v too high", asym/total)
	}
}

func TestSheppLogan3D(t *testing.T) {
	v := SheppLogan3D(32, 16)
	if v.W != 32 || v.H != 32 || v.D != 16 {
		t.Fatalf("dims %dx%dx%d", v.W, v.H, v.D)
	}
	// Middle slice has the most structure, edge slices shrink.
	midEnergy := sliceEnergy(v.Slice(8))
	endEnergy := sliceEnergy(v.Slice(0))
	if midEnergy <= endEnergy {
		t.Errorf("mid slice energy %v should exceed end slice %v", midEnergy, endEnergy)
	}
}

func sliceEnergy(im *vol.Image) float64 {
	var e float64
	for _, v := range im.Pix {
		e += v * v
	}
	return e
}

func TestFeatherDeterministic(t *testing.T) {
	p := DefaultFeather(Chicken)
	a := Feather(p, 48, 24)
	b := Feather(p, 48, 24)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed should give identical phantom")
		}
	}
}

func TestFeatherHasStructure(t *testing.T) {
	for _, sp := range []FeatherSpecies{Chicken, Sandgrouse} {
		v := Feather(DefaultFeather(sp), 48, 24)
		frac := v.FractionAbove(0.5)
		if frac <= 0 {
			t.Errorf("%v feather has no keratin", sp)
		}
		if frac > 0.5 {
			t.Errorf("%v feather is mostly solid (%v); should be sparse", sp, frac)
		}
	}
}

func TestWaterStorageIndexSeparatesSpecies(t *testing.T) {
	// The sandgrouse's coiled barbules enclose more near-keratin void —
	// the morphological signal from case study 1.
	n, d := 64, 32
	chicken := Feather(DefaultFeather(Chicken), n, d)
	grouse := Feather(DefaultFeather(Sandgrouse), n, d)
	ci := WaterStorageIndex(chicken, 0.5)
	gi := WaterStorageIndex(grouse, 0.5)
	if !(gi > ci) {
		t.Errorf("water storage index: sandgrouse %v should exceed chicken %v", gi, ci)
	}
}

func TestFeatherSpeciesString(t *testing.T) {
	if Chicken.String() != "chicken" || Sandgrouse.String() != "sandgrouse" {
		t.Fatal("bad species names")
	}
}

func TestProppantStructure(t *testing.T) {
	p := DefaultProppant()
	v := Proppant(p, 64, 32)
	// Fracture void at the midplane outside grains: sample a corner of the
	// midplane (grains are random but cover little of the full plane).
	midY := v.H / 2
	voidCount := 0
	for x := 0; x < v.W; x++ {
		if v.At(x, midY, 0) == 0 {
			voidCount++
		}
	}
	if voidCount == 0 {
		t.Error("no fracture void found at midplane")
	}
	// Matrix away from fracture is shale-dense.
	if v.At(3, 2, 3) < p.ShaleDens*0.8 {
		t.Errorf("matrix voxel %v too light", v.At(3, 2, 3))
	}
	// Grains are the densest phase.
	_, hi := v.MinMax()
	if hi < p.GrainDens {
		t.Errorf("max %v below grain density %v", hi, p.GrainDens)
	}
}

func TestProppantSegmentation(t *testing.T) {
	// Thresholding at above-shale density isolates the grains.
	p := DefaultProppant()
	v := Proppant(p, 64, 32)
	grainFrac := v.FractionAbove((p.ShaleDens*1.1 + p.GrainDens) / 2)
	if grainFrac <= 0 {
		t.Fatal("segmentation found no grains")
	}
	if grainFrac > 0.2 {
		t.Fatalf("grain fraction %v implausibly high", grainFrac)
	}
}

func TestRasterizeEllipsesAdditive(t *testing.T) {
	// Two overlapping ellipses add.
	es := []Ellipse{
		{Value: 1, A: 0.5, B: 0.5},
		{Value: 0.5, A: 0.25, B: 0.25},
	}
	im := RasterizeEllipses(es, 32)
	c := im.At(16, 16)
	if c != 1.5 {
		t.Fatalf("center = %v, want 1.5", c)
	}
}

func TestRasterizeEllipsesRotation(t *testing.T) {
	// A long thin ellipse rotated 90° swaps axes.
	flat := RasterizeEllipses([]Ellipse{{Value: 1, A: 0.8, B: 0.1}}, 64)
	tall := RasterizeEllipses([]Ellipse{{Value: 1, A: 0.8, B: 0.1, ThetaDeg: 90}}, 64)
	if flat.At(55, 32) != 1 || flat.At(32, 55) != 0 {
		t.Error("unrotated ellipse should be wide, not tall")
	}
	if tall.At(55, 32) != 0 || tall.At(32, 55) != 1 {
		t.Error("rotated ellipse should be tall, not wide")
	}
}

func BenchmarkSheppLogan256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SheppLogan(256)
	}
}

func BenchmarkFeather(b *testing.B) {
	p := DefaultFeather(Sandgrouse)
	for i := 0; i < b.N; i++ {
		Feather(p, 64, 32)
	}
}

func TestCoilSpreadIndexSeparatesSpecies(t *testing.T) {
	n, d := 64, 24
	chicken := Feather(DefaultFeather(Chicken), n, d)
	grouse := Feather(DefaultFeather(Sandgrouse), n, d)
	ci := CoilSpreadIndex(chicken, 0.5)
	gi := CoilSpreadIndex(grouse, 0.5)
	if !(gi > ci) {
		t.Errorf("coil spread: sandgrouse %v should exceed chicken %v", gi, ci)
	}
	if ci < 0 || ci > 1 || gi < 0 || gi > 1 {
		t.Errorf("indices out of [0,1]: %v %v", ci, gi)
	}
	empty := vol.NewVolume(8, 8, 0)
	if CoilSpreadIndex(empty, 0.5) != 0 {
		t.Error("empty volume index should be 0")
	}
}

// Package phantom generates the synthetic samples that stand in for the
// beamline's physical specimens: the standard Shepp-Logan head phantom
// used to validate reconstruction quality, procedural feather phantoms
// (chicken vs sandgrouse, case study 1), and a propped-fracture shale
// phantom (case study 2). All phantoms are defined on the unit square
// / cube and rasterized to caller-chosen resolutions, giving the
// reconstruction benchmarks a known ground truth.
package phantom

import (
	"math"
	"math/rand"

	"repro/internal/vol"
)

// Ellipse describes one additive ellipse of a 2D analytic phantom in the
// [-1,1]² coordinate system: value is added inside the rotated ellipse.
type Ellipse struct {
	Value    float64 // additive attenuation
	A, B     float64 // semi-axes
	X, Y     float64 // center
	ThetaDeg float64 // rotation, degrees CCW
}

// SheppLogan2D is the classic ten-ellipse Shepp-Logan phantom with the
// "modified" (Toft) contrast values that make soft-tissue detail visible.
var SheppLogan2D = []Ellipse{
	{Value: 1.0, A: 0.69, B: 0.92, X: 0, Y: 0, ThetaDeg: 0},
	{Value: -0.8, A: 0.6624, B: 0.8740, X: 0, Y: -0.0184, ThetaDeg: 0},
	{Value: -0.2, A: 0.1100, B: 0.3100, X: 0.22, Y: 0, ThetaDeg: -18},
	{Value: -0.2, A: 0.1600, B: 0.4100, X: -0.22, Y: 0, ThetaDeg: 18},
	{Value: 0.1, A: 0.2100, B: 0.2500, X: 0, Y: 0.35, ThetaDeg: 0},
	{Value: 0.1, A: 0.0460, B: 0.0460, X: 0, Y: 0.1, ThetaDeg: 0},
	{Value: 0.1, A: 0.0460, B: 0.0460, X: 0, Y: -0.1, ThetaDeg: 0},
	{Value: 0.1, A: 0.0460, B: 0.0230, X: -0.08, Y: -0.605, ThetaDeg: 0},
	{Value: 0.1, A: 0.0230, B: 0.0230, X: 0, Y: -0.606, ThetaDeg: 0},
	{Value: 0.1, A: 0.0230, B: 0.0460, X: 0.06, Y: -0.605, ThetaDeg: 0},
}

// RasterizeEllipses renders an analytic ellipse phantom onto an n×n grid
// covering [-1,1]².
func RasterizeEllipses(ellipses []Ellipse, n int) *vol.Image {
	im := vol.NewImage(n, n)
	for _, e := range ellipses {
		th := e.ThetaDeg * math.Pi / 180
		ct, st := math.Cos(th), math.Sin(th)
		for py := 0; py < n; py++ {
			y := -1 + (2*float64(py)+1)/float64(n)
			for px := 0; px < n; px++ {
				x := -1 + (2*float64(px)+1)/float64(n)
				// Rotate into the ellipse frame.
				dx := x - e.X
				dy := y - e.Y
				rx := dx*ct + dy*st
				ry := -dx*st + dy*ct
				if (rx*rx)/(e.A*e.A)+(ry*ry)/(e.B*e.B) <= 1 {
					im.Pix[py*n+px] += e.Value
				}
			}
		}
	}
	return im
}

// SheppLogan returns the modified Shepp-Logan phantom rasterized at n×n.
func SheppLogan(n int) *vol.Image {
	return RasterizeEllipses(SheppLogan2D, n)
}

// SheppLogan3D returns a 3D phantom built by modulating the 2D phantom's
// ellipse sizes along z with an elliptical profile, approximating the
// standard 3D Shepp-Logan head. The volume is n×n×d.
func SheppLogan3D(n, d int) *vol.Volume {
	v := vol.NewVolume(n, n, d)
	for z := 0; z < d; z++ {
		// z in [-1, 1]
		zz := -1 + (2*float64(z)+1)/float64(d)
		scale := math.Sqrt(math.Max(0, 1-zz*zz*0.8))
		if scale <= 0.05 {
			continue
		}
		slice := make([]Ellipse, len(SheppLogan2D))
		for i, e := range SheppLogan2D {
			e.A *= scale
			e.B *= scale
			e.X *= scale
			e.Y *= scale
			slice[i] = e
		}
		v.SetSlice(z, RasterizeEllipses(slice, n))
	}
	return v
}

// FeatherSpecies selects which feather microstructure to generate.
type FeatherSpecies int

const (
	// Chicken feathers have straight, simple barbules.
	Chicken FeatherSpecies = iota
	// Sandgrouse feathers have coiled barbule structures that store
	// water — the desert adaptation case study 1 visualizes.
	Sandgrouse
)

func (s FeatherSpecies) String() string {
	if s == Sandgrouse {
		return "sandgrouse"
	}
	return "chicken"
}

// FeatherParams controls the procedural feather phantom.
type FeatherParams struct {
	Species  FeatherSpecies
	Barbs    int     // number of barbs branching off the rachis
	Barbules int     // barbules per barb
	Density  float64 // keratin attenuation value
	Seed     int64
}

// DefaultFeather returns the parameters used by the case-study example.
func DefaultFeather(s FeatherSpecies) FeatherParams {
	return FeatherParams{Species: s, Barbs: 12, Barbules: 14, Density: 1.0, Seed: 42}
}

// Feather rasterizes a feather cross-section phantom volume at n×n×d.
// The rachis runs along z; barbs branch in x; barbules branch off barbs.
// For sandgrouse, barbules follow helical (coiled) paths, creating the
// hollow coil channels that hold water; for chicken they are straight.
func Feather(p FeatherParams, n, d int) *vol.Volume {
	rng := rand.New(rand.NewSource(p.Seed))
	v := vol.NewVolume(n, n, d)
	cx, cy := float64(n)/2, float64(n)/2
	rachisR := float64(n) * 0.04

	// Rachis: central shaft along z.
	for z := 0; z < d; z++ {
		stampDisk(v, z, cx, cy, rachisR, p.Density)
	}

	for b := 0; b < p.Barbs; b++ {
		// Each barb leaves the rachis at angle phi and extends outward.
		phi := 2 * math.Pi * float64(b) / float64(p.Barbs)
		zAt := int(float64(d) * (0.1 + 0.8*rng.Float64()))
		barbLen := float64(n) * (0.25 + 0.15*rng.Float64())
		barbR := rachisR * 0.45
		steps := int(barbLen)
		if steps < 2 {
			steps = 2
		}
		for s := 0; s <= steps; s++ {
			t := float64(s) / float64(steps)
			bx := cx + t*barbLen*math.Cos(phi)
			by := cy + t*barbLen*math.Sin(phi)
			stampDisk(v, zAt, bx, by, barbR, p.Density)

			// Barbules branch periodically along the barb.
			if s%(steps/p.Barbules+1) == 0 && s > 0 {
				drawBarbule(v, rng, p, zAt, bx, by, phi, barbR)
			}
		}
	}
	return v
}

// drawBarbule draws one barbule starting at (bx, by) on slice z0. Chicken
// barbules are straight rays; sandgrouse barbules are helices around the
// launch direction, leaving a coiled keratin tube with an open lumen.
func drawBarbule(v *vol.Volume, rng *rand.Rand, p FeatherParams, z0 int, bx, by, phi, r float64) {
	length := float64(v.W) * 0.08
	dir := phi + math.Pi/2
	if rng.Intn(2) == 0 {
		dir = phi - math.Pi/2
	}
	steps := int(length * 2)
	if steps < 4 {
		steps = 4
	}
	coilR := r * 1.6
	turns := 3.0
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		x := bx + t*length*math.Cos(dir)
		y := by + t*length*math.Sin(dir)
		z := z0
		if p.Species == Sandgrouse {
			// Helical displacement perpendicular to travel.
			a := 2 * math.Pi * turns * t
			x += coilR * math.Cos(a) * math.Cos(dir+math.Pi/2)
			y += coilR * math.Cos(a) * math.Sin(dir+math.Pi/2)
			z = z0 + int(coilR*math.Sin(a))
			if z < 0 || z >= v.D {
				continue
			}
		}
		stampDisk(v, z, x, y, r*0.5, p.Density*0.9)
	}
}

// stampDisk additively rasterizes a filled disk of radius r at (cx, cy) on
// slice z, saturating at the stamp value so overlaps don't over-brighten.
func stampDisk(v *vol.Volume, z int, cx, cy, r, val float64) {
	if z < 0 || z >= v.D {
		return
	}
	x0 := int(math.Max(0, cx-r))
	x1 := int(math.Min(float64(v.W-1), cx+r))
	y0 := int(math.Max(0, cy-r))
	y1 := int(math.Min(float64(v.H-1), cy+r))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			if dx*dx+dy*dy <= r*r {
				if v.At(x, y, z) < val {
					v.Set(x, y, z, val)
				}
			}
		}
	}
}

// WaterStorageIndex estimates the coiled-channel volume of a feather
// phantom: the fraction of empty voxels that lie within two voxels of
// keratin. Coiled sandgrouse barbules enclose far more near-surface void
// than straight chicken barbules, so this index separates the species —
// the morphological difference case study 1 reports.
func WaterStorageIndex(v *vol.Volume, threshold float64) float64 {
	var near, total int
	for z := 0; z < v.D; z++ {
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if v.At(x, y, z) >= threshold {
					continue // keratin itself
				}
				total++
				if anyNeighborAbove(v, x, y, z, 2, threshold) {
					near++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(near) / float64(total)
}

func anyNeighborAbove(v *vol.Volume, x, y, z, r int, t float64) bool {
	for dz := -r; dz <= r; dz++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				nx, ny, nz := x+dx, y+dy, z+dz
				if nx < 0 || ny < 0 || nz < 0 || nx >= v.W || ny >= v.H || nz >= v.D {
					continue
				}
				if v.At(nx, ny, nz) >= t {
					return true
				}
			}
		}
	}
	return false
}

// ProppantParams controls the propped-fracture shale phantom.
type ProppantParams struct {
	Grains    int     // number of proppant spheres in the fracture
	GrainR    float64 // grain radius as a fraction of volume width
	FractureW float64 // fracture aperture as a fraction of volume height
	ShaleDens float64 // matrix attenuation
	GrainDens float64 // proppant attenuation (denser than shale)
	Seed      int64
}

// DefaultProppant returns the parameters used by case study 2.
func DefaultProppant() ProppantParams {
	return ProppantParams{
		Grains: 24, GrainR: 0.055, FractureW: 0.18,
		ShaleDens: 0.55, GrainDens: 1.0, Seed: 2020,
	}
}

// Proppant rasterizes a shale block with a horizontal fracture held open
// by proppant spheres: shale matrix above and below, a low-density
// fracture void, and high-density grains bridging it.
func Proppant(p ProppantParams, n, d int) *vol.Volume {
	rng := rand.New(rand.NewSource(p.Seed))
	v := vol.NewVolume(n, n, d)
	fracHalf := p.FractureW * float64(v.H) / 2
	midY := float64(v.H) / 2

	// Matrix with mild laminar banding (shale bedding planes).
	for z := 0; z < d; z++ {
		for y := 0; y < v.H; y++ {
			fy := float64(y)
			if math.Abs(fy-midY) < fracHalf {
				continue // fracture void
			}
			band := 1 + 0.08*math.Sin(fy*0.4)
			val := p.ShaleDens * band
			for x := 0; x < v.W; x++ {
				v.Set(x, y, z, val)
			}
		}
	}

	// Proppant grains inside the fracture.
	gr := p.GrainR * float64(n)
	for g := 0; g < p.Grains; g++ {
		cx := gr + rng.Float64()*(float64(n)-2*gr)
		cz := gr + rng.Float64()*(float64(d)-2*gr)
		cy := midY + (rng.Float64()*2-1)*(fracHalf-gr)*0.5
		stampSphere(v, cx, cy, cz, gr, p.GrainDens)
	}
	return v
}

func stampSphere(v *vol.Volume, cx, cy, cz, r, val float64) {
	x0 := int(math.Max(0, cx-r))
	x1 := int(math.Min(float64(v.W-1), cx+r))
	y0 := int(math.Max(0, cy-r))
	y1 := int(math.Min(float64(v.H-1), cy+r))
	z0 := int(math.Max(0, cz-r))
	z1 := int(math.Min(float64(v.D-1), cz+r))
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				dx := float64(x) - cx
				dy := float64(y) - cy
				dz := float64(z) - cz
				if dx*dx+dy*dy+dz*dz <= r*r {
					v.Set(x, y, z, val)
				}
			}
		}
	}
}

// CoilSpreadIndex measures the fraction of z-slices containing keratin
// away from the central rachis column. Sandgrouse barbules coil out of
// their launch plane, spreading keratin across many slices, while chicken
// barbules stay in-plane — so the index separates the species and, unlike
// WaterStorageIndex, is robust to reconstruction blur (it depends on
// where structure is, not on its exact thickness).
func CoilSpreadIndex(v *vol.Volume, threshold float64) float64 {
	if v.D == 0 {
		return 0
	}
	exclR2 := float64(v.W*v.W) / 64 // exclude the rachis neighborhood
	count := 0
	for z := 0; z < v.D; z++ {
		found := false
		for y := 0; y < v.H && !found; y++ {
			for x := 0; x < v.W; x++ {
				dx, dy := float64(x-v.W/2), float64(y-v.H/2)
				if dx*dx+dy*dy < exclR2 {
					continue
				}
				if v.At(x, y, z) >= threshold {
					found = true
					break
				}
			}
		}
		if found {
			count++
		}
	}
	return float64(count) / float64(v.D)
}

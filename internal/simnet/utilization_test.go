package simnet

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// xfer moves size bytes a→b from a fresh proc and runs the engine to
// quiescence, failing the test on transfer error unless wantErr.
func xfer(t *testing.T, e *sim.Engine, n *Network, size int64, wantErr bool) {
	t.Helper()
	e.Go("xfer", func(p *sim.Proc) {
		_, err := n.Transfer(p, "a", "b", size)
		if (err != nil) != wantErr {
			t.Errorf("transfer error = %v, wantErr = %v", err, wantErr)
		}
	})
	e.Run()
}

func TestWindowedUtilizationEmptyWindow(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	l := n.AddLink("a", "b", Gbps, 0)
	xfer(t, e, n, 1<<30, false)
	if u := l.WindowedUtilization(e.Now(), 0); u != 0 {
		t.Fatalf("zero window utilization = %v, want 0", u)
	}
	if u := l.WindowedUtilization(e.Now(), -time.Second); u != 0 {
		t.Fatalf("negative window utilization = %v, want 0", u)
	}
}

func TestWindowedUtilizationIdleLink(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	l := n.AddLink("a", "b", Gbps, 0)
	if u := l.WindowedUtilization(epoch.Add(time.Hour), time.Hour); u != 0 {
		t.Fatalf("idle link utilization = %v, want 0", u)
	}
}

func TestWindowedUtilizationSpanAtCut(t *testing.T) {
	// One transfer busy on [0, 8s]. A window whose cut falls exactly at
	// the span end must see nothing; a window starting exactly at the
	// span start must count it in full.
	e := sim.New(epoch)
	n := New(e)
	l := n.AddLink("a", "b", Gbps, 0)
	xfer(t, e, n, 1<<30, false) // 1 GiB at 1 Gbps ≈ 8.59 s
	busy := e.Now().Sub(epoch)

	// Cut exactly at the span end: now = end + window.
	if u := l.WindowedUtilization(e.Now().Add(time.Minute), time.Minute); u != 0 {
		t.Fatalf("span ending at the cut contributed %v, want 0", u)
	}
	// Window start exactly at the span start: full credit.
	u := l.WindowedUtilization(e.Now(), busy)
	if math.Abs(u-1) > 1e-9 {
		t.Fatalf("span starting at the cut = %v, want 1", u)
	}
	// Half the span inside the window.
	u = l.WindowedUtilization(e.Now(), busy/2)
	if math.Abs(u-1) > 1e-9 {
		t.Fatalf("half-window over a busy tail = %v, want 1", u)
	}
	// Window twice the span: utilization halves.
	u = l.WindowedUtilization(e.Now(), 2*busy)
	if math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("double-window utilization = %v, want 0.5", u)
	}
}

func TestWindowedUtilizationAfterSetDown(t *testing.T) {
	// Traffic, then SetDown: new transfers fail without recording busy
	// time, and the old spans age out of the window as the clock runs on.
	e := sim.New(epoch)
	n := New(e)
	l := n.AddLink("a", "b", Gbps, 0)
	xfer(t, e, n, 1<<30, false)
	busyEnd := e.Now()

	if err := n.SetDown("a", "b", true); err != nil {
		t.Fatal(err)
	}
	xfer(t, e, n, 1<<30, true)
	if got := l.WindowedUtilization(busyEnd, time.Hour); got == 0 {
		t.Fatal("pre-outage busy spans should still be visible in the window")
	}
	// An hour after the outage the old spans are outside a 30m window.
	later := busyEnd.Add(time.Hour)
	if u := l.WindowedUtilization(later, 30*time.Minute); u != 0 {
		t.Fatalf("utilization %v after spans aged out, want 0", u)
	}

	// Restore and the link accumulates spans again.
	if err := n.SetDown("a", "b", false); err != nil {
		t.Fatal(err)
	}
	xfer(t, e, n, 1<<30, false)
	if u := l.WindowedUtilization(e.Now(), time.Minute); u == 0 {
		t.Fatal("restored link should record busy spans again")
	}
}

func TestWindowedUtilizationMidTransferFlap(t *testing.T) {
	// A flap mid-transfer stops span recording at the chunk boundary:
	// the recorded busy time stays below the full-transfer duration.
	e := sim.New(epoch)
	n := New(e)
	l := n.AddLink("a", "b", Gbps, 0)
	e.Go("flap", func(p *sim.Proc) {
		p.Sleep(3 * time.Second) // one ~2.1s chunk fits; the next sees Down
		l.Down = true
	})
	e.Go("xfer", func(p *sim.Proc) {
		if _, err := n.Transfer(p, "a", "b", 4<<30); err == nil {
			t.Error("mid-transfer flap should fail the transfer")
		}
	})
	e.Run()
	full := float64(4<<30) / Gbps
	if got := l.WindowedUtilization(e.Now(), time.Hour) * 3600; got >= full {
		t.Fatalf("busy seconds %v not truncated by the flap (full transfer %v)", got, full)
	}
	if l.WindowedUtilization(e.Now(), time.Hour) == 0 {
		t.Fatal("chunks before the flap should have recorded busy spans")
	}
}

func TestBusySpanMergeAndBound(t *testing.T) {
	// Back-to-back chunks merge into one span; overflowing the bound
	// compacts to the newest half instead of growing without limit.
	l := &Link{}
	base := epoch
	l.recordBusy(base, base.Add(time.Second))
	l.recordBusy(base.Add(time.Second), base.Add(2*time.Second))
	if len(l.busy) != 1 {
		t.Fatalf("contiguous spans did not merge: %d spans", len(l.busy))
	}
	if got := l.busy[0].end.Sub(l.busy[0].start); got != 2*time.Second {
		t.Fatalf("merged span length = %v, want 2s", got)
	}
	// Disjoint spans accumulate up to the cap, then compact.
	for i := 0; len(l.busy) < maxBusySpans; i++ {
		at := base.Add(time.Duration(10+2*i) * time.Second)
		l.recordBusy(at, at.Add(time.Second))
	}
	at := base.Add(time.Duration(10+2*maxBusySpans) * time.Hour)
	l.recordBusy(at, at.Add(time.Second))
	if len(l.busy) != maxBusySpans/2+1 {
		t.Fatalf("compaction left %d spans, want %d", len(l.busy), maxBusySpans/2+1)
	}
	if got := l.busy[len(l.busy)-1].start; !got.Equal(at) {
		t.Fatal("newest span lost during compaction")
	}
}

package simnet

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestSingleTransferTiming(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	n.AddLink("als", "nersc", 10*Gbps, 5*time.Millisecond)
	var got time.Duration
	e.Go("t", func(p *sim.Proc) {
		d, err := n.Transfer(p, "als", "nersc", 25<<30) // 25 GiB
		if err != nil {
			t.Error(err)
		}
		got = d
	})
	e.Run()
	// 25 GiB at 10 Gbps ≈ 21.5 s plus 5 ms latency.
	want := float64(25<<30) / (10 * Gbps)
	if math.Abs(got.Seconds()-want) > 0.1 {
		t.Fatalf("transfer took %v, want ~%.1fs", got, want)
	}
}

func TestBidirectionalLinks(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	n.AddLink("a", "b", Gbps, 0)
	if _, err := n.Link("b", "a"); err != nil {
		t.Fatal("reverse link missing")
	}
	if _, err := n.Link("a", "c"); err == nil {
		t.Fatal("missing link should error")
	}
}

func TestNoRouteError(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	var err error
	e.Go("t", func(p *sim.Proc) {
		_, err = n.Transfer(p, "x", "y", 100)
	})
	e.Run()
	if err == nil {
		t.Fatal("transfer without a link should fail")
	}
}

func TestConcurrentTransfersShareBandwidth(t *testing.T) {
	// Two equal transfers on one link should each take about twice the
	// solo duration (chunked round-robin sharing).
	size := int64(4 << 30)
	solo := run(t, 1, size)
	dual := run(t, 2, size)
	ratio := dual.Seconds() / solo.Seconds()
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("2-way sharing slowdown = %.2f, want ~2", ratio)
	}
}

func run(t *testing.T, streams int, size int64) time.Duration {
	t.Helper()
	e := sim.New(epoch)
	n := New(e)
	n.AddLink("a", "b", 10*Gbps, 0)
	var last time.Duration
	for i := 0; i < streams; i++ {
		e.Go("t", func(p *sim.Proc) {
			d, err := n.Transfer(p, "a", "b", size)
			if err != nil {
				t.Error(err)
			}
			if d > last {
				last = d
			}
		})
	}
	e.Run()
	return last
}

func TestAccounting(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	l := n.AddLink("a", "b", Gbps, 0)
	e.Go("t", func(p *sim.Proc) {
		n.Transfer(p, "a", "b", 1<<30)
		n.Transfer(p, "a", "b", 1<<30)
	})
	end := e.Run()
	if l.TotalBytes != 2<<30 {
		t.Fatalf("TotalBytes = %d", l.TotalBytes)
	}
	u := l.Utilization(end.Sub(epoch))
	if u < 0.99 || u > 1.01 {
		t.Fatalf("back-to-back utilization = %v, want ~1", u)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("zero window utilization should be 0")
	}
}

func TestZeroByteTransfer(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	n.AddLink("a", "b", Gbps, 3*time.Millisecond)
	var d time.Duration
	e.Go("t", func(p *sim.Proc) {
		d, _ = n.Transfer(p, "a", "b", 0)
	})
	e.Run()
	if d != 3*time.Millisecond {
		t.Fatalf("zero-byte transfer took %v, want latency only", d)
	}
}

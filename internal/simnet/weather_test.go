package simnet

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// A link flap fails new transfers immediately, kills in-flight transfers
// at the next chunk boundary, and restores cleanly — the WAN weather the
// scenario engine schedules.
func TestSetDownFailsTransfers(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	n.AddLink("als", "nersc", 10*Gbps, 0)

	var newErr, inflightErr, afterErr error
	e.Go("inflight", func(p *sim.Proc) {
		// 4 chunks at 10 Gbps ≈ 0.2 s each; the flap at t=0.3 s lands
		// between chunk boundaries.
		_, inflightErr = n.Transfer(p, "als", "nersc", 4*DefaultChunkBytes)
	})
	e.Go("weather", func(p *sim.Proc) {
		p.Sleep(300 * time.Millisecond)
		if err := n.SetDown("als", "nersc", true); err != nil {
			t.Error(err)
		}
		_, newErr = n.Transfer(p, "als", "nersc", 1<<20)
		p.Sleep(time.Second)
		if err := n.SetDown("als", "nersc", false); err != nil {
			t.Error(err)
		}
		_, afterErr = n.Transfer(p, "als", "nersc", 1<<20)
	})
	e.Run()

	for name, err := range map[string]error{"new": newErr, "inflight": inflightErr} {
		if err == nil {
			t.Fatalf("%s transfer succeeded across a down link", name)
		}
		if faults.Classify(err) != faults.Transient {
			t.Fatalf("%s transfer error class %v, want Transient", name, faults.Classify(err))
		}
	}
	if afterErr != nil {
		t.Fatalf("transfer after restore failed: %v", afterErr)
	}
	// Down applies to both directions, like real WAN weather.
	rev, err := n.Link("nersc", "als")
	if err != nil {
		t.Fatal(err)
	}
	if rev.Down {
		t.Fatal("reverse link still down after restore")
	}
}

func TestSetDownBothDirections(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	n.AddLink("a", "b", Gbps, 0)
	if err := n.SetDown("a", "b", true); err != nil {
		t.Fatal(err)
	}
	for _, dir := range [][2]string{{"a", "b"}, {"b", "a"}} {
		l, err := n.Link(dir[0], dir[1])
		if err != nil {
			t.Fatal(err)
		}
		if !l.Down {
			t.Fatalf("link %s → %s not down", dir[0], dir[1])
		}
	}
	if err := n.SetDown("a", "c", true); err == nil {
		t.Fatal("SetDown on a missing link must error")
	}
}

// SetBandwidth retunes both directions live: a transfer started before
// the change finishes at a rate reflecting the mid-flight dip.
func TestSetBandwidthAppliesPerChunk(t *testing.T) {
	e := sim.New(epoch)
	n := New(e)
	n.AddLink("als", "nersc", 10*Gbps, 0)

	var dur time.Duration
	e.Go("t", func(p *sim.Proc) {
		d, err := n.Transfer(p, "als", "nersc", 4*DefaultChunkBytes)
		if err != nil {
			t.Error(err)
		}
		dur = d
	})
	e.Go("weather", func(p *sim.Proc) {
		p.Sleep(250 * time.Millisecond) // after the first chunk or two
		if err := n.SetBandwidth("als", "nersc", Gbps); err != nil {
			t.Error(err)
		}
	})
	e.Run()

	fullSec := float64(4*DefaultChunkBytes) / (10 * Gbps)
	full := time.Duration(fullSec * float64(time.Second))
	if dur <= full {
		t.Fatalf("transfer took %v, no slower than the undegraded %v", dur, full)
	}
	rev, err := n.Link("nersc", "als")
	if err != nil {
		t.Fatal(err)
	}
	if rev.Bandwidth != Gbps {
		t.Fatalf("reverse bandwidth %v, want %v", rev.Bandwidth, Gbps)
	}
	if err := n.SetBandwidth("als", "nersc", 0); err == nil {
		t.Fatal("zero bandwidth must be rejected")
	}
	if err := n.SetBandwidth("als", "missing", Gbps); err == nil {
		t.Fatal("SetBandwidth on a missing link must error")
	}
}

// Package simnet models the wide-area network between the beamline and the
// HPC centers (ESnet in the paper) on the discrete-event kernel. Each
// directed link has a propagation latency and an aggregate bandwidth;
// concurrent transfers share a link by moving data in fixed-size chunks
// through a FIFO resource, which approximates fair round-robin sharing
// without the bookkeeping of exact processor-sharing.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Bandwidth constants in bytes per second.
const (
	Gbps = 1e9 / 8
	Mbps = 1e6 / 8
)

// DefaultChunkBytes is the granularity at which concurrent transfers
// interleave on a link.
const DefaultChunkBytes = 256 << 20

type route struct{ from, to string }

// Link is a directed network path with finite bandwidth.
type Link struct {
	Bandwidth  float64 // bytes per second
	Latency    time.Duration
	ChunkBytes int64

	res *sim.Resource
	// TotalBytes accumulates all payload bytes moved over the link.
	TotalBytes int64
	// BusyTime accumulates serialization time, for utilization reports.
	BusyTime time.Duration
}

// Network is a set of named sites joined by directed links.
type Network struct {
	e     *sim.Engine
	links map[route]*Link
}

// New creates an empty network on the engine.
func New(e *sim.Engine) *Network {
	return &Network{e: e, links: map[route]*Link{}}
}

// AddLink installs a bidirectional pair of links between two sites with
// the same bandwidth and latency in both directions, returning the
// forward-direction link.
func (n *Network) AddLink(a, b string, bandwidth float64, latency time.Duration) *Link {
	fwd := &Link{Bandwidth: bandwidth, Latency: latency, ChunkBytes: DefaultChunkBytes,
		res: sim.NewResource(n.e, 1)}
	rev := &Link{Bandwidth: bandwidth, Latency: latency, ChunkBytes: DefaultChunkBytes,
		res: sim.NewResource(n.e, 1)}
	n.links[route{a, b}] = fwd
	n.links[route{b, a}] = rev
	return fwd
}

// Link returns the directed link from a to b.
func (n *Network) Link(a, b string) (*Link, error) {
	l, ok := n.links[route{a, b}]
	if !ok {
		return nil, fmt.Errorf("simnet: no link %s → %s", a, b)
	}
	return l, nil
}

// Transfer moves size bytes from site a to site b, blocking the calling
// process for the propagation latency plus the serialized chunk time, and
// returns the elapsed virtual duration.
func (n *Network) Transfer(p *sim.Proc, a, b string, size int64) (time.Duration, error) {
	l, err := n.Link(a, b)
	if err != nil {
		return 0, err
	}
	start := p.Now()
	p.Sleep(l.Latency)
	chunk := l.ChunkBytes
	if chunk <= 0 {
		chunk = DefaultChunkBytes
	}
	for remaining := size; remaining > 0; remaining -= chunk {
		this := chunk
		if remaining < chunk {
			this = remaining
		}
		d := time.Duration(float64(this) / l.Bandwidth * float64(time.Second))
		l.res.Acquire(p)
		p.Sleep(d)
		l.res.Release()
		l.BusyTime += d
	}
	l.TotalBytes += size
	return p.Now().Sub(start), nil
}

// Utilization returns the fraction of the window the link spent busy.
func (l *Link) Utilization(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(l.BusyTime) / float64(window)
}

// Package simnet models the wide-area network between the beamline and the
// HPC centers (ESnet in the paper) on the discrete-event kernel. Each
// directed link has a propagation latency and an aggregate bandwidth;
// concurrent transfers share a link by moving data in fixed-size chunks
// through a FIFO resource, which approximates fair round-robin sharing
// without the bookkeeping of exact processor-sharing.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Bandwidth constants in bytes per second.
const (
	Gbps = 1e9 / 8
	Mbps = 1e6 / 8
)

// DefaultChunkBytes is the granularity at which concurrent transfers
// interleave on a link.
const DefaultChunkBytes = 256 << 20

type route struct{ from, to string }

// Link is a directed network path with finite bandwidth.
type Link struct {
	Bandwidth  float64 // bytes per second
	Latency    time.Duration
	ChunkBytes int64
	// Down marks the link failed: transfers in flight fail at their next
	// chunk boundary and new transfers fail immediately, with a transient
	// fault so retry loops treat a flap as recoverable. Scenario chaos
	// toggles it through Network.SetDown.
	Down bool

	res *sim.Resource
	// TotalBytes accumulates all payload bytes moved over the link.
	TotalBytes int64
	// BusyTime accumulates serialization time, for utilization reports.
	BusyTime time.Duration
	// busy records recent serialization intervals for windowed
	// utilization. Adjacent chunks merge into one span; the slice is
	// bounded by maxBusySpans, dropping the oldest half when full.
	busy []busySpan
}

// busySpan is one contiguous interval the link spent serializing chunks.
type busySpan struct{ start, end time.Time }

// maxBusySpans bounds the per-link busy history. At the default chunk
// size a span covers at least 256 MB, so the retained history spans
// a terabyte of recent traffic — far wider than any scoring window.
const maxBusySpans = 4096

// recordBusy appends a serialization interval, merging with the previous
// span when contiguous and compacting (dropping the oldest half) at the
// bound.
func (l *Link) recordBusy(start, end time.Time) {
	if n := len(l.busy); n > 0 && !l.busy[n-1].end.Before(start) {
		if end.After(l.busy[n-1].end) {
			l.busy[n-1].end = end
		}
		return
	}
	if len(l.busy) >= maxBusySpans {
		half := len(l.busy) / 2
		l.busy = append(l.busy[:0], l.busy[half:]...)
	}
	l.busy = append(l.busy, busySpan{start: start, end: end})
}

// Network is a set of named sites joined by directed links.
type Network struct {
	e     *sim.Engine
	links map[route]*Link
}

// New creates an empty network on the engine.
func New(e *sim.Engine) *Network {
	return &Network{e: e, links: map[route]*Link{}}
}

// AddLink installs a bidirectional pair of links between two sites with
// the same bandwidth and latency in both directions, returning the
// forward-direction link.
func (n *Network) AddLink(a, b string, bandwidth float64, latency time.Duration) *Link {
	fwd := &Link{Bandwidth: bandwidth, Latency: latency, ChunkBytes: DefaultChunkBytes,
		res: sim.NewResource(n.e, 1)}
	rev := &Link{Bandwidth: bandwidth, Latency: latency, ChunkBytes: DefaultChunkBytes,
		res: sim.NewResource(n.e, 1)}
	n.links[route{a, b}] = fwd
	n.links[route{b, a}] = rev
	return fwd
}

// Link returns the directed link from a to b.
func (n *Network) Link(a, b string) (*Link, error) {
	l, ok := n.links[route{a, b}]
	if !ok {
		return nil, fmt.Errorf("simnet: no link %s → %s", a, b)
	}
	return l, nil
}

// both returns the directed link pair between two sites (in either
// argument order both directions are affected — WAN weather does not
// discriminate by direction).
func (n *Network) both(a, b string) (*Link, *Link, error) {
	fwd, err := n.Link(a, b)
	if err != nil {
		return nil, nil, err
	}
	rev, err := n.Link(b, a)
	if err != nil {
		return nil, nil, err
	}
	return fwd, rev, nil
}

// SetBandwidth retunes both directions of the a↔b link to the given
// bandwidth in bytes per second. Transfers in flight pick the new rate up
// at their next chunk, which is how a time-varying WAN weather schedule
// composes with long transfers.
func (n *Network) SetBandwidth(a, b string, bandwidth float64) error {
	if bandwidth <= 0 {
		return fmt.Errorf("simnet: bandwidth %v for %s ↔ %s must be positive (use SetDown for an outage)", bandwidth, a, b)
	}
	fwd, rev, err := n.both(a, b)
	if err != nil {
		return err
	}
	fwd.Bandwidth = bandwidth
	rev.Bandwidth = bandwidth
	return nil
}

// SetDown fails (or restores) both directions of the a↔b link — a link
// flap. While down, transfers error with a transient fault.
func (n *Network) SetDown(a, b string, down bool) error {
	fwd, rev, err := n.both(a, b)
	if err != nil {
		return err
	}
	fwd.Down = down
	rev.Down = down
	return nil
}

// Transfer moves size bytes from site a to site b, blocking the calling
// process for the propagation latency plus the serialized chunk time, and
// returns the elapsed virtual duration.
func (n *Network) Transfer(p *sim.Proc, a, b string, size int64) (time.Duration, error) {
	l, err := n.Link(a, b)
	if err != nil {
		return 0, err
	}
	start := p.Now()
	if l.Down {
		return p.Now().Sub(start), faults.Errorf(faults.Transient, "simnet: link %s → %s is down", a, b)
	}
	p.Sleep(l.Latency)
	chunk := l.ChunkBytes
	if chunk <= 0 {
		chunk = DefaultChunkBytes
	}
	for remaining := size; remaining > 0; remaining -= chunk {
		// Re-check per chunk: a flap mid-transfer kills the stream at the
		// next chunk boundary, and a bandwidth change applies from here on.
		if l.Down {
			return p.Now().Sub(start), faults.Errorf(faults.Transient,
				"simnet: link %s → %s went down mid-transfer", a, b)
		}
		this := chunk
		if remaining < chunk {
			this = remaining
		}
		d := time.Duration(float64(this) / l.Bandwidth * float64(time.Second))
		l.res.Acquire(p)
		p.Sleep(d)
		l.res.Release()
		l.BusyTime += d
		end := p.Now()
		l.recordBusy(end.Add(-d), end)
	}
	l.TotalBytes += size
	return p.Now().Sub(start), nil
}

// Utilization returns the fraction of the window the link spent busy.
func (l *Link) Utilization(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(l.BusyTime) / float64(window)
}

// WindowedUtilization returns the fraction of the window (now-window, now]
// the link spent serializing chunks, from the bounded busy-span history.
// A span ending exactly at the window cut contributes nothing; a span
// starting exactly at the cut is counted in full. A non-positive window
// returns 0, and the result is clamped to [0, 1] — the link resource
// serializes chunks, so overlap cannot legitimately exceed the window.
func (l *Link) WindowedUtilization(now time.Time, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	cut := now.Add(-window)
	var busy time.Duration
	for i := len(l.busy) - 1; i >= 0; i-- {
		s := l.busy[i]
		if !s.end.After(cut) {
			break // spans are ordered; everything earlier is out of window too
		}
		start, end := s.start, s.end
		if start.Before(cut) {
			start = cut
		}
		if end.After(now) {
			end = now
		}
		if end.After(start) {
			busy += end.Sub(start)
		}
	}
	u := float64(busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

package tiff

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/phantom"
	"repro/internal/vol"
)

func TestFloat32RoundTrip(t *testing.T) {
	im := vol.NewImage(7, 5)
	for i := range im.Pix {
		im.Pix[i] = float64(i)*0.25 - 3
	}
	raw, err := Encode(im, F32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 7 || got.H != 5 {
		t.Fatalf("dims %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pix[%d] = %v, want %v", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestUint16ScalesToFullRange(t *testing.T) {
	im := vol.NewImage(4, 1)
	im.Pix = []float64{-1, 0, 1, 3}
	raw, err := Encode(im, U16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pix[0] != 0 {
		t.Errorf("min should map to 0, got %v", got.Pix[0])
	}
	if got.Pix[3] != 65535 {
		t.Errorf("max should map to 65535, got %v", got.Pix[3])
	}
	// Order preserved.
	for i := 1; i < 4; i++ {
		if got.Pix[i] <= got.Pix[i-1] {
			t.Errorf("ordering lost: %v", got.Pix)
		}
	}
}

func TestUint16ConstantImage(t *testing.T) {
	im := vol.NewImage(3, 3)
	im.Fill(7)
	raw, err := Encode(im, U16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got.Pix {
		if v != 0 {
			t.Fatal("zero-range image should encode as zeros, not NaN garbage")
		}
	}
}

func TestEncodeRejectsEmpty(t *testing.T) {
	if _, err := Encode(vol.NewImage(0, 0), F32); err == nil {
		t.Fatal("empty image should be rejected")
	}
	if _, err := Encode(vol.NewImage(2, 2), SampleFormat(9)); err == nil {
		t.Fatal("unknown format should be rejected")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("MM"),
		[]byte("II*\x00\xff\xff\xff\xff"), // IFD offset out of range
		[]byte("II+\x00\x08\x00\x00\x00\x00\x00"), // wrong magic
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
	// Truncated IFD.
	im := vol.NewImage(2, 2)
	raw, _ := Encode(im, F32)
	if _, err := Decode(raw[:len(raw)-20]); err == nil {
		t.Error("truncated IFD decoded")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(w8, h8 uint8, seed int64) bool {
		w := int(w8%16) + 1
		h := int(h8%16) + 1
		im := vol.NewImage(w, h)
		x := seed
		for i := range im.Pix {
			x = x*6364136223846793005 + 1442695040888963407
			im.Pix[i] = float64(int16(x >> 48))
		}
		raw, err := Encode(im, F32)
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil || got.W != w || got.H != h {
			return false
		}
		for i := range im.Pix {
			if got.Pix[i] != im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	im := phantom.SheppLogan(32)
	path := filepath.Join(dir, "slice.tif")
	if err := WriteFile(path, im, F32); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if math.Abs(got.Pix[i]-im.Pix[i]) > 1e-6 {
			t.Fatal("file roundtrip mismatch")
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.tif")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestStackRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "stack")
	v := phantom.SheppLogan3D(16, 5)
	if err := WriteStack(dir, v, F32); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "slice_*.tif"))
	if len(files) != 5 {
		t.Fatalf("stack has %d files", len(files))
	}
	got, err := ReadStack(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != 5 || got.W != 16 {
		t.Fatalf("stack dims %dx%dx%d", got.W, got.H, got.D)
	}
	for i := range v.Data {
		if math.Abs(got.Data[i]-v.Data[i]) > 1e-6 {
			t.Fatal("stack roundtrip mismatch")
		}
	}
}

func TestReadStackErrors(t *testing.T) {
	if _, err := ReadStack(t.TempDir()); err == nil {
		t.Fatal("empty dir should error")
	}
	// Mismatched slice size.
	dir := t.TempDir()
	WriteFile(filepath.Join(dir, "slice_0000.tif"), vol.NewImage(4, 4), F32)
	WriteFile(filepath.Join(dir, "slice_0001.tif"), vol.NewImage(5, 4), F32)
	if _, err := ReadStack(dir); err == nil {
		t.Fatal("mismatched stack should error")
	}
	// Corrupt member.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "slice_0000.tif"), []byte("junk"), 0o644)
	if _, err := ReadStack(dir2); err == nil {
		t.Fatal("corrupt member should error")
	}
}

func TestImageJCompatibleLayout(t *testing.T) {
	// Sanity-check the binary layout: II magic, 42, strip directly after
	// the 8-byte header.
	im := vol.NewImage(2, 2)
	im.Pix = []float64{1, 2, 3, 4}
	raw, _ := Encode(im, F32)
	if raw[0] != 'I' || raw[1] != 'I' || raw[2] != 42 || raw[3] != 0 {
		t.Fatalf("header bytes % x", raw[:4])
	}
	// First pixel at offset 8 should be float32(1).
	if raw[8] != 0 || raw[9] != 0 || raw[10] != 0x80 || raw[11] != 0x3f {
		t.Fatalf("first pixel bytes % x", raw[8:12])
	}
}

func BenchmarkEncodeSlice256(b *testing.B) {
	im := phantom.SheppLogan(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(im, F32); err != nil {
			b.Fatal(err)
		}
	}
}

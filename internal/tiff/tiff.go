// Package tiff implements the minimal subset of the TIFF 6.0 format the
// file-based branch needs: the reconstruction jobs write a stack of
// grayscale slices that beamline users open in ImageJ. Images are written
// as single-strip, uncompressed, little-endian grayscale TIFFs in either
// 32-bit float (the reconstruction's native precision) or 16-bit unsigned
// form, and the reader accepts what the writer produces.
package tiff

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/vol"
)

// SampleFormat selects the pixel encoding.
type SampleFormat int

// Supported encodings.
const (
	// F32 writes IEEE 754 32-bit float samples (ImageJ-compatible).
	F32 SampleFormat = iota
	// U16 writes 16-bit unsigned samples, min/max scaled.
	U16
)

// TIFF tag IDs used here.
const (
	tagImageWidth    = 256
	tagImageLength   = 257
	tagBitsPerSample = 258
	tagCompression   = 259
	tagPhotometric   = 262
	tagStripOffsets  = 273
	tagRowsPerStrip  = 278
	tagStripBytes    = 279
	tagSampleFormat  = 339
)

// Encode serializes an image as a single-strip grayscale TIFF.
func Encode(im *vol.Image, format SampleFormat) ([]byte, error) {
	if im.W <= 0 || im.H <= 0 {
		return nil, fmt.Errorf("tiff: cannot encode %dx%d image", im.W, im.H)
	}
	var bits, sampleFmt int
	var pixels []byte
	switch format {
	case F32:
		bits, sampleFmt = 32, 3 // IEEE float
		pixels = make([]byte, 4*len(im.Pix))
		for i, v := range im.Pix {
			binary.LittleEndian.PutUint32(pixels[i*4:], math.Float32bits(float32(v)))
		}
	case U16:
		bits, sampleFmt = 16, 1 // unsigned int
		lo, hi := im.MinMax()
		scale := 0.0
		if hi > lo {
			scale = 65535 / (hi - lo)
		}
		pixels = make([]byte, 2*len(im.Pix))
		for i, v := range im.Pix {
			binary.LittleEndian.PutUint16(pixels[i*2:], uint16((v-lo)*scale))
		}
	default:
		return nil, fmt.Errorf("tiff: unknown sample format %d", format)
	}

	// Layout: 8-byte header, pixel strip, IFD.
	const headerLen = 8
	stripOffset := headerLen
	ifdOffset := headerLen + len(pixels)

	type entry struct {
		tag   uint16
		typ   uint16 // 3=SHORT, 4=LONG
		count uint32
		value uint32
	}
	entries := []entry{
		{tagImageWidth, 4, 1, uint32(im.W)},
		{tagImageLength, 4, 1, uint32(im.H)},
		{tagBitsPerSample, 3, 1, uint32(bits)},
		{tagCompression, 3, 1, 1}, // none
		{tagPhotometric, 3, 1, 1}, // BlackIsZero
		{tagStripOffsets, 4, 1, uint32(stripOffset)},
		{tagRowsPerStrip, 4, 1, uint32(im.H)},
		{tagStripBytes, 4, 1, uint32(len(pixels))},
		{tagSampleFormat, 3, 1, uint32(sampleFmt)},
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].tag < entries[j].tag })

	out := make([]byte, 0, ifdOffset+2+12*len(entries)+4)
	// Header: II, magic 42, IFD offset.
	out = append(out, 'I', 'I', 42, 0)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(ifdOffset))
	out = append(out, u32[:]...)
	out = append(out, pixels...)
	// IFD.
	var u16b [2]byte
	binary.LittleEndian.PutUint16(u16b[:], uint16(len(entries)))
	out = append(out, u16b[:]...)
	for _, e := range entries {
		binary.LittleEndian.PutUint16(u16b[:], e.tag)
		out = append(out, u16b[:]...)
		binary.LittleEndian.PutUint16(u16b[:], e.typ)
		out = append(out, u16b[:]...)
		binary.LittleEndian.PutUint32(u32[:], e.count)
		out = append(out, u32[:]...)
		// SHORT values are stored left-justified in the 4-byte slot.
		binary.LittleEndian.PutUint32(u32[:], e.value)
		out = append(out, u32[:]...)
	}
	binary.LittleEndian.PutUint32(u32[:], 0) // no next IFD
	out = append(out, u32[:]...)
	return out, nil
}

// Decode parses a TIFF produced by Encode (single-strip, uncompressed,
// little-endian grayscale; float32 or uint16 samples).
func Decode(raw []byte) (*vol.Image, error) {
	if len(raw) < 8 || raw[0] != 'I' || raw[1] != 'I' ||
		binary.LittleEndian.Uint16(raw[2:]) != 42 {
		return nil, fmt.Errorf("tiff: bad header")
	}
	ifdOff := int(binary.LittleEndian.Uint32(raw[4:]))
	if ifdOff+2 > len(raw) {
		return nil, fmt.Errorf("tiff: IFD offset out of range")
	}
	n := int(binary.LittleEndian.Uint16(raw[ifdOff:]))
	if ifdOff+2+12*n+4 > len(raw) {
		return nil, fmt.Errorf("tiff: truncated IFD")
	}
	tags := map[uint16]uint32{}
	for i := 0; i < n; i++ {
		base := ifdOff + 2 + 12*i
		tag := binary.LittleEndian.Uint16(raw[base:])
		typ := binary.LittleEndian.Uint16(raw[base+2:])
		val := binary.LittleEndian.Uint32(raw[base+8:])
		if typ == 3 { // SHORT stored in low bytes
			val = uint32(binary.LittleEndian.Uint16(raw[base+8:]))
		}
		tags[tag] = val
	}
	w := int(tags[tagImageWidth])
	h := int(tags[tagImageLength])
	bits := int(tags[tagBitsPerSample])
	offset := int(tags[tagStripOffsets])
	nbytes := int(tags[tagStripBytes])
	sampleFmt := tags[tagSampleFormat]
	if tags[tagCompression] != 1 {
		return nil, fmt.Errorf("tiff: compression %d unsupported", tags[tagCompression])
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("tiff: bad dimensions %dx%d", w, h)
	}
	if offset < 0 || nbytes < 0 || offset+nbytes > len(raw) {
		return nil, fmt.Errorf("tiff: strip out of range")
	}
	// Resolve the sample encoding before sizing anything: w and h come
	// from untrusted 32-bit tags, so the byte-count check is done in
	// uint64 (w*h < 2^64 always fits) to rule out overflow tricking us
	// into allocating a huge image for a tiny strip.
	var bytesPer int
	switch {
	case bits == 32 && sampleFmt == 3:
		bytesPer = 4
	case bits == 16 && sampleFmt == 1:
		bytesPer = 2
	default:
		return nil, fmt.Errorf("tiff: %d-bit sample format %d unsupported", bits, sampleFmt)
	}
	if nbytes%bytesPer != 0 || uint64(w)*uint64(h) != uint64(nbytes/bytesPer) {
		return nil, fmt.Errorf("tiff: strip has %d bytes for %dx%d×%d-bit", nbytes, w, h, bits)
	}
	im := vol.NewImage(w, h)
	strip := raw[offset : offset+nbytes]
	switch bytesPer {
	case 4:
		for i := range im.Pix {
			im.Pix[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(strip[i*4:])))
		}
	case 2:
		for i := range im.Pix {
			im.Pix[i] = float64(binary.LittleEndian.Uint16(strip[i*2:]))
		}
	}
	return im, nil
}

// WriteFile encodes im to path.
func WriteFile(path string, im *vol.Image, format SampleFormat) error {
	raw, err := Encode(im, format)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// ReadFile decodes the TIFF at path.
func ReadFile(path string) (*vol.Image, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}

// WriteStack writes every slice of v as slice_NNNN.tif under dir — the
// TIFF stack the reconstruction flows hand to ImageJ users.
func WriteStack(dir string, v *vol.Volume, format SampleFormat) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for z := 0; z < v.D; z++ {
		path := filepath.Join(dir, fmt.Sprintf("slice_%04d.tif", z))
		if err := WriteFile(path, v.Slice(z), format); err != nil {
			return fmt.Errorf("tiff: slice %d: %w", z, err)
		}
	}
	return nil
}

// ReadStack reads a directory written by WriteStack back into a volume.
func ReadStack(dir string) (*vol.Volume, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "slice_*.tif"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("tiff: no slices in %s", dir)
	}
	sort.Strings(matches)
	var v *vol.Volume
	for z, path := range matches {
		im, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		if v == nil {
			v = vol.NewVolume(im.W, im.H, len(matches))
		}
		if im.W != v.W || im.H != v.H {
			return nil, fmt.Errorf("tiff: slice %d is %dx%d, stack is %dx%d",
				z, im.W, im.H, v.W, v.H)
		}
		v.SetSlice(z, im)
	}
	return v, nil
}

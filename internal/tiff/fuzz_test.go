package tiff

import (
	"bytes"
	"testing"

	"repro/internal/vol"
)

// fuzzImage derives a small deterministic image from fuzz bytes: the first
// two bytes pick the dimensions (1..16 each), the rest fill pixels.
func fuzzImage(raw []byte) *vol.Image {
	if len(raw) < 2 {
		return nil
	}
	w := int(raw[0])%16 + 1
	h := int(raw[1])%16 + 1
	im := vol.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = float64(raw[(2+i)%len(raw)]) / 7
	}
	return im
}

// FuzzTIFFRoundTrip feeds arbitrary bytes to Decode (must error, never
// panic) and checks decode(encode(x)) == x for an image derived from the
// same bytes.
func FuzzTIFFRoundTrip(f *testing.F) {
	// Seed with valid encodings in both formats and some corruptions.
	seed := vol.NewImage(3, 2)
	for i := range seed.Pix {
		seed.Pix[i] = float64(i) * 1.5
	}
	for _, format := range []SampleFormat{F32, U16} {
		enc, err := Encode(seed, format)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)-3])
		mut := bytes.Clone(enc)
		mut[8] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte("II\x2a\x00"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Arbitrary input must decode cleanly or error — never panic,
		// never allocate beyond what the strip bytes justify.
		if im, err := Decode(raw); err == nil {
			if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H {
				t.Fatalf("decoded inconsistent image %dx%d with %d pixels", im.W, im.H, len(im.Pix))
			}
		}

		im := fuzzImage(raw)
		if im == nil {
			return
		}
		// F32 is exact for float32-representable values; pixels here are
		// small rationals so the round trip must be bit-perfect after one
		// float32 narrowing.
		enc, err := Encode(im, F32)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding: %v", err)
		}
		if got.W != im.W || got.H != im.H {
			t.Fatalf("round trip %dx%d -> %dx%d", im.W, im.H, got.W, got.H)
		}
		for i := range im.Pix {
			if got.Pix[i] != float64(float32(im.Pix[i])) {
				t.Fatalf("pixel %d: %v -> %v", i, im.Pix[i], got.Pix[i])
			}
		}
		// U16 is lossy (min/max scaled) but must still round trip the
		// geometry without error.
		enc16, err := Encode(im, U16)
		if err != nil {
			t.Fatal(err)
		}
		got16, err := Decode(enc16)
		if err != nil {
			t.Fatalf("u16 decode: %v", err)
		}
		if got16.W != im.W || got16.H != im.H {
			t.Fatalf("u16 round trip %dx%d -> %dx%d", im.W, im.H, got16.W, got16.H)
		}
	})
}

// Command benchtables regenerates every table and figure of the paper's
// evaluation section from the simulated multi-facility environment, and
// prints each next to the paper's published numbers. Run with -all (the
// default) or select one artifact:
//
//	benchtables -table 2          Table 2 flow-run statistics
//	benchtables -fig streaming    §5.2 streaming latency sweep
//	benchtables -fig lifecycle    §4.3 / Fig. 3 data lifecycle
//	benchtables -fig speedup      §5.1 >100× time-to-insight
//	benchtables -fig prune        §5.3 prune-burst incident
//	benchtables -fig dualpath     dual-path ablation (A2)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

var epoch = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func main() {
	table := flag.Int("table", 0, "regenerate a numbered table (2)")
	fig := flag.String("fig", "", "regenerate a figure: streaming|lifecycle|speedup|prune|dualpath|contention")
	scans := flag.Int("scans", 100, "number of scans for the Table 2 campaign")
	seed := flag.Int64("seed", 832, "simulation seed")
	flag.Parse()

	all := *table == 0 && *fig == ""
	if all || *table == 2 {
		runTable2(*scans, *seed)
	}
	if all || *fig == "streaming" {
		runStreaming()
	}
	if all || *fig == "lifecycle" {
		runLifecycle(*seed)
	}
	if all || *fig == "speedup" {
		runSpeedup(*seed)
	}
	if all || *fig == "prune" {
		runPrune()
	}
	if all || *fig == "dualpath" {
		runDualPath(*seed)
	}
	if all || *fig == "contention" {
		runContention()
	}
	if !all && *table != 0 && *table != 2 {
		fmt.Fprintf(os.Stderr, "unknown table %d (the paper has Table 2)\n", *table)
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func cfgWithSeed(seed int64) core.SimConfig {
	cfg := core.DefaultSimConfig()
	cfg.Seed = seed
	return cfg
}

func runTable2(scans int, seed int64) {
	header("Table 2: flow-run summary statistics")
	fmt.Print(table2Output(scans, seed))
}

// table2Output renders the whole Table 2 artifact deterministically (fixed
// seed in, identical text out) so the golden test can cover it.
func table2Output(scans int, seed int64) string {
	b := core.NewBeamline(epoch, cfgWithSeed(seed))
	res := b.RunProductionCampaign(nil, scans, scans)
	var sb strings.Builder
	sb.WriteString(core.FormatTable2(res))
	sb.WriteString("\npaper reference:\n")
	sb.WriteString("  new_file_832       100  120 ± 171    56  [30, 676]\n")
	sb.WriteString("  nersc_recon_flow   100 1525 ± 464  1665  [354, 2351]\n")
	sb.WriteString("  alcf_recon_flow    100 1151 ± 246  1114  [710, 1965]\n")
	sb.WriteString(fmt.Sprintf("\nstreaming previews alongside: median %.1f s, max %.1f s (paper: <10 s)\n",
		res.Streaming.Median, res.Streaming.Max))
	sb.WriteString(fmt.Sprintf("streaming stage breakdown: %s\n",
		core.FormatStages(res.Stages[core.FlowStreaming])))
	names := make([]string, 0, len(res.SuccessRate))
	for name := range res.SuccessRate {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sb.WriteString(fmt.Sprintf("success rate %-18s %.0f%%\n", name, res.SuccessRate[name]*100))
	}
	return sb.String()
}

func runStreaming() {
	header("§5.2 streaming latency sweep")
	pts := core.RunStreamingSweep(epoch, []float64{0.5, 1, 2, 5, 10, 15, 20, 25, 30})
	fmt.Printf("%8s %12s %12s %10s %s\n", "raw GB", "recon", "send", "total", "<10s")
	for _, p := range pts {
		fmt.Printf("%8.1f %12v %12v %10v %v\n",
			p.RawGB, p.ReconTime.Round(time.Millisecond),
			p.SendTime.Round(time.Millisecond),
			p.Latency.Round(time.Millisecond), p.UnderTenSec)
	}
	fmt.Println("\npaper reference: 1969×2160×2560 u16 (~20 GB) reconstructs in 7–8 s;")
	fmt.Println("preview slices return in <1 s; total <10 s after acquisition.")
}

func runLifecycle(seed int64) {
	header("§4.3 / Fig. 3 data lifecycle")
	for _, cadence := range []time.Duration{3 * time.Minute, 4 * time.Minute, 5 * time.Minute} {
		b := core.NewBeamline(epoch, cfgWithSeed(seed))
		res := b.RunLifecycle(4*time.Hour, cadence)
		fmt.Printf("cadence %v: %d scans, %.1f scans/h, raw %.2f TB, derived %.2f TB, projected %.2f TB/day\n",
			cadence, res.Scans, res.ScansPerHour,
			float64(res.RawBytes)/1e12, float64(res.DerivedBytes)/1e12,
			res.DailyBytes/1e12)
		fmt.Printf("  tiers: beamline %.2f TB, CFS %.2f TB, HPSS %.2f TB; pruned %.2f TB; WAN util %.0f%%\n",
			float64(res.DataSrvUsed)/1e12, float64(res.CFSUsed)/1e12,
			float64(res.HPSSUsed)/1e12, float64(res.PrunedBytes)/1e12,
			res.WANUtilization*100)
	}
	fmt.Println("\npaper reference: 12–20 scans/hour peak, 0.5–5 TB/day, ~30 GB raw per scan")
}

func runSpeedup(seed int64) {
	header("§5.1 time-to-insight vs historical workflow")
	b := core.NewBeamline(epoch, cfgWithSeed(seed))
	res := b.RunSpeedup()
	fmt.Printf("historical: %v save + %v single-slice recon = %v\n",
		res.HistoricalSave, res.HistoricalRecon, res.Historical)
	fmt.Printf("streaming preview now: %v  → %.0f× speedup\n",
		res.StreamingNow.Round(time.Millisecond), res.SpeedupPreview)
	fmt.Printf("file-branch full volume now: %v → %.1f× speedup\n",
		res.FileBranchNow.Round(time.Second), res.SpeedupVolume)
	fmt.Println("\npaper reference: \">100× improvement in time-to-insight\"")
}

func runPrune() {
	header("§5.3 prune-burst incident")
	res := core.RunPruneIncident(epoch, 24, 4, 0.5)
	fmt.Printf("%d prune requests through 4 workers, 50%% permission-locked:\n", res.Requests)
	fmt.Printf("  legacy (hang on error): makespan %v, peak queue %d\n",
		res.LegacyMakespan.Round(time.Second), res.LegacyPeakQ)
	fmt.Printf("  fail-early fix:         makespan %v, peak queue %d\n",
		res.FixedMakespan.Round(time.Second), res.FixedPeakQ)
	fmt.Printf("  improvement: %.1f× faster drain\n",
		res.LegacyMakespan.Seconds()/res.FixedMakespan.Seconds())
	fmt.Println("\npaper reference: hung prune jobs saturated the queue; refactored to fail early")
}

func runDualPath(seed int64) {
	header("A2 ablation: dual-path vs file-only feedback latency")
	b := core.NewBeamline(epoch, cfgWithSeed(seed))
	var stream, file time.Duration
	b.Engine.Go("ablation", func(p *sim.Proc) {
		scan := &core.Scan{ID: "ablate", Sample: "typical", RawBytes: 20e9,
			NAngles: 1969, Rows: 2160, Cols: 2560, Acquired: p.Now()}
		if err := b.Detector.Put(p, "raw/"+scan.ID+".h5", scan.RawBytes, "c"); err != nil {
			return
		}
		lat, err := b.StreamingPreviewSim(nil, p, scan)
		if err != nil {
			return
		}
		stream = lat
		t0 := p.Now()
		if err := b.NewFile832Flow(nil, p, scan); err != nil {
			return
		}
		if err := b.NERSCReconFlow(nil, p, scan); err != nil {
			return
		}
		file = p.Now().Sub(t0)
	})
	b.Engine.Run()
	fmt.Printf("streaming branch first feedback: %v\n", stream.Round(time.Millisecond))
	fmt.Printf("file-only branch first feedback: %v\n", file.Round(time.Second))
	if stream > 0 {
		fmt.Printf("dual-path advantage: %.0f× earlier feedback\n", file.Seconds()/stream.Seconds())
	}
	fmt.Println("\npaper rationale: \"storing the data on multiple intermediate file systems")
	fmt.Println("introduces feedback latency, so we implement dual-path processing\"")
}

func runContention() {
	header("§6 extension: multi-beamline GPU contention (shared vs reserved)")
	fmt.Printf("%10s %9s %9s %12s %12s %8s\n",
		"beamlines", "gpus", "policy", "median s", "max s", "<10s")
	for _, n := range []int{2, 4, 6, 8} {
		for _, reserved := range []bool{false, true} {
			res := core.RunStreamingContention(epoch, n, 4, 8, 20*time.Second, reserved)
			policy := "shared"
			if reserved {
				policy = "reserved"
			}
			fmt.Printf("%10d %9d %9s %12.1f %12.1f %7.0f%%\n",
				n, res.GPUs, policy, res.Latency.Median, res.Latency.Max, res.Under10s*100)
		}
	}
	fmt.Println("\npaper rationale (§6): \"At scale, compute could be reserved for each")
	fmt.Println("beamline to prevent resource contention.\"")
}

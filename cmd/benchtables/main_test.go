package main

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTable2Golden pins the full Table 2 artifact — including the per-stage
// breakdown column — under a fixed seed on the sim kernel. Regenerate with
// `go test ./cmd/benchtables -run Golden -update` after intentional
// changes.
func TestTable2Golden(t *testing.T) {
	got := table2Output(30, 832)
	golden := filepath.Join("testdata", "table2_seed832_scans30.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("table 2 output drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}

// TestTable2StageSumsMatchDurations asserts the tracing invariant behind
// the breakdown column: for every flow, the per-stage means (gap included)
// sum to the flow's mean duration.
func TestTable2StageSumsMatchDurations(t *testing.T) {
	b := core.NewBeamline(epoch, cfgWithSeed(832))
	res := b.RunProductionCampaign(nil, 30, 30)
	for _, row := range res.Rows {
		stages := res.Stages[row.Flow]
		if len(stages) == 0 {
			t.Errorf("%s: no stage breakdown", row.Flow)
			continue
		}
		var sum float64
		for _, st := range stages {
			if st.MeanS < 0 {
				t.Errorf("%s: negative stage mean %+v", row.Flow, st)
			}
			sum += st.MeanS
		}
		if math.Abs(sum-row.Summary.Mean) > 1e-6 {
			t.Errorf("%s: stage means sum %v != mean duration %v",
				row.Flow, sum, row.Summary.Mean)
		}
	}
}

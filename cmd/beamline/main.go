// Command beamline runs a live end-to-end demonstration of both workflow
// branches at laptop scale: a simulated detector publishes a scan over the
// PVA fabric; the streaming service reconstructs a three-slice preview and
// pushes it back; in parallel the file-based pipeline writes the DXchange
// file, reconstructs the full volume, emits a multiscale Zarr pyramid,
// ingests metadata into the catalog, and registers the volume with the
// access service. It prints the latency of each step.
//
//	beamline -size 64 -angles 96 -slices 16
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/msgq"
	"repro/internal/phantom"
	"repro/internal/pva"
	"repro/internal/scicat"
	"repro/internal/tiled"
	"repro/internal/tomo"
	"repro/internal/vol"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("beamline: ")

	size := flag.Int("size", 64, "detector columns (and reconstruction size)")
	angles := flag.Int("angles", 96, "projection angles over 180°")
	slices := flag.Int("slices", 16, "detector rows (volume slices)")
	sample := flag.String("sample", "shepp", "shepp|feather|proppant")
	workdir := flag.String("workdir", "", "artifact directory (temp dir when empty)")
	incremental := flag.Bool("incremental", false, "fold projections into the preview as they stream in (tomo.IncrementalPreview)")
	flag.Parse()

	// One ctx from entry to exit: Ctrl-C aborts the streaming service and
	// the file-based pipeline at the next stage boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	truth := makeSample(*sample, *size, *slices)
	theta := tomo.UniformAngles(*angles)

	// --- Streaming branch ---------------------------------------------
	ioc, err := pva.NewServer("127.0.0.1:0", 8192)
	must(err)
	defer ioc.Close()
	mirrorSrv, err := pva.NewServer("127.0.0.1:0", 8192)
	must(err)
	defer mirrorSrv.Close()
	mirror, err := pva.NewMirror(ioc.Addr(), "bl832:det", mirrorSrv)
	must(err)
	go mirror.Run()

	sink, err := msgq.NewPull("127.0.0.1:0")
	must(err)
	defer sink.Close()

	svc := &core.StreamingService{
		PVAAddr: mirrorSrv.Addr(), Channel: "bl832:det", PreviewAddr: sink.Addr(),
		Recon:       tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter},
		Incremental: *incremental,
	}
	go svc.Run(ctx)
	waitMonitors(mirrorSrv, "bl832:det")
	waitMonitors(ioc, "bl832:det")

	log.Printf("acquiring %q: %d angles × %d×%d", *sample, *angles, *slices, *size)
	acq := tomo.Acquire(truth, theta, *size, tomo.AcquireOptions{I0: 5e4, GainVariation: 0.02, Seed: 7})
	scanID := fmt.Sprintf("demo_%s", *sample)

	acqStart := time.Now()
	must(core.PublishAcquisition(ioc, "bl832:det", scanID, acq, 0))
	log.Printf("acquisition streamed in %v", time.Since(acqStart).Round(time.Millisecond))

	// Unblock the preview wait on Ctrl-C: closing the sink makes Recv
	// return immediately instead of running out its timeout.
	go func() { <-ctx.Done(); sink.Close() }()
	msg, err := sink.Recv(60 * time.Second)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			log.Fatalf("interrupted while waiting for preview: %v", cerr)
		}
		log.Fatal(err)
	}
	h, previews, err := core.DecodePreview(msg)
	must(err)
	lo, hi := previews[0].MinMax()
	log.Printf("streaming preview for %s: %d angles, %.1f ms after end-of-scan, central slice range [%.3f, %.3f]",
		h.ScanID, h.NAngles, h.LatencyMS, lo, hi)

	// --- File-based branch ---------------------------------------------
	catalog := scicat.New()
	access := tiled.NewServer()
	res, err := core.RunScanPipeline(ctx, scanID, truth, theta,
		tomo.AcquireOptions{I0: 5e4, GainVariation: 0.02, Seed: 7},
		core.PipelineOptions{
			WorkDir: *workdir,
			Recon:   tomo.ReconOptions{Algorithm: tomo.AlgGridrec, AutoCOR: true},
			Catalog: catalog,
			Tiled:   access,
		})
	must(err)
	log.Printf("file branch: raw %s (%.1f MB) → zarr %s (%.1f MB)",
		res.RawPath, float64(res.RawBytes)/1e6, res.ZarrPath, float64(res.ZarrBytes)/1e6)
	log.Printf("stage timings: acquire %v, write %v, reconstruct %v, outputs %v",
		res.AcquireDur.Round(time.Millisecond), res.WriteDur.Round(time.Millisecond),
		res.ReconDur.Round(time.Millisecond), res.OutputDur.Round(time.Millisecond))
	log.Printf("cataloged as %s; volume served under key %q", res.PID, scanID)
	fmt.Println("ok")
}

func makeSample(name string, size, slices int) *vol.Volume {
	switch name {
	case "feather":
		return phantom.Feather(phantom.DefaultFeather(phantom.Sandgrouse), size, slices)
	case "proppant":
		return phantom.Proppant(phantom.DefaultProppant(), size, slices)
	default:
		return phantom.SheppLogan3D(size, slices)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitMonitors(srv *pva.Server, channel string) {
	deadline := time.Now().Add(5 * time.Second)
	for srv.Monitors(channel) < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }

// writeSpec materializes a tiny fast-sim spec and returns its path.
func writeSpec(t *testing.T, name, extra string) string {
	t.Helper()
	dir := t.TempDir()
	spec := "name: " + name + `
campaign:
  beamlines: 1
  workers: 1
  scans_per_beamline: 2
  scan_interval: 1m
  fast_sim: true
` + extra
	path := filepath.Join(dir, name+".yaml")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSubcommand(t *testing.T) {
	path := writeSpec(t, "cli-run", "")
	var out, errb bytes.Buffer
	if code := run([]string{"run", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var o map[string]interface{}
	if err := json.Unmarshal(out.Bytes(), &o); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, out.String())
	}
	if o["scenario"] != "cli-run" || o["pass"] != true {
		t.Fatalf("outcome: %v", o)
	}
}

func TestRunSubcommandDeterministic(t *testing.T) {
	path := writeSpec(t, "cli-det", "")
	var a, b bytes.Buffer
	if code := run([]string{"run", path}, &a, new(bytes.Buffer)); code != 0 {
		t.Fatal("first run failed")
	}
	if code := run([]string{"run", path}, &b, new(bytes.Buffer)); code != 0 {
		t.Fatal("second run failed")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs of the same spec differ")
	}
}

func TestRunFailedExpectationExitsNonzero(t *testing.T) {
	path := writeSpec(t, "cli-fail", "expect:\n  completed_runs:\n    min: 10000\n")
	var out, errb bytes.Buffer
	if code := run([]string{"run", path}, &out, &errb); code == 0 {
		t.Fatal("failed expectation exited 0")
	}
	if !strings.Contains(errb.String(), "completed_runs") {
		t.Fatalf("stderr does not name the failed check: %s", errb.String())
	}
}

func TestRecordVerifyRoundTrip(t *testing.T) {
	path := writeSpec(t, "cli-golden", "")
	dir := filepath.Dir(path)
	var out, errb bytes.Buffer

	// Verify before record: missing golden, nonzero exit, actionable hint.
	if code := run([]string{"verify", "-dir", dir}, &out, &errb); code == 0 {
		t.Fatal("verify passed with no golden")
	}
	if !strings.Contains(out.String(), "no golden") {
		t.Fatalf("missing-golden message absent: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"record", "-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("record failed: %s%s", out.String(), errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "cli-golden.golden.json")); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if code := run([]string{"verify", "-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("verify after record failed: %s%s", out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "golden matches") {
		t.Fatalf("verify output: %s", out.String())
	}
}

func TestVerifyStaleGoldenShowsDiff(t *testing.T) {
	path := writeSpec(t, "cli-stale", "")
	dir := filepath.Dir(path)
	var out, errb bytes.Buffer
	if code := run([]string{"record", path}, &out, &errb); code != 0 {
		t.Fatalf("record: %s", errb.String())
	}
	golden := filepath.Join(dir, "cli-stale.golden.json")
	if err := os.WriteFile(golden, []byte("{\n  \"scenario\": \"other\"\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"verify", path}, &out, &errb); code == 0 {
		t.Fatal("stale golden verified clean")
	}
	if !strings.Contains(out.String(), "diverges") || !strings.Contains(out.String(), "+ ") {
		t.Fatalf("no readable diff in output: %s", out.String())
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{"bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown subcommand: exit %d", code)
	}
	if code := run([]string{"help"}, &out, &errb); code != 0 {
		t.Fatalf("help: exit %d", code)
	}
	if code := run([]string{"verify", "-dir", t.TempDir()}, &out, &errb); code == 0 {
		t.Fatal("empty dir verified clean")
	}
	if code := run([]string{"run", filepath.Join(t.TempDir(), "missing.yaml")}, &out, &errb); code == 0 {
		t.Fatal("missing spec ran clean")
	}
}

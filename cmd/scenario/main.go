// Command scenario runs declarative chaos-campaign specs and verifies
// their golden outcome reports.
//
//	scenario run    [specs...]       execute specs, print outcome reports
//	scenario verify [-dir D] [specs] replay twice, diff against goldens
//	scenario record [-dir D] [specs] re-record goldens (determinism-gated)
//
// With no spec arguments, verify and record walk -dir (default
// internal/scenario/testdata) for *.yaml, *.yml, and *.json specs,
// skipping *.golden.json. Exit status is nonzero when any spec fails
// verification: a nondeterministic replay, a missing or stale golden, or
// a failed in-spec expectation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/scenario"
)

const defaultDir = "internal/scenario/testdata"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(rest, stdout, stderr)
	case "verify":
		return cmdVerifyRecord(rest, stdout, stderr, false)
	case "record":
		return cmdVerifyRecord(rest, stdout, stderr, true)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "scenario: unknown subcommand %q\n", cmd)
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  scenario run    <spec>...          execute specs, print outcome reports
  scenario verify [-dir D] [specs]   replay twice, diff against goldens
  scenario record [-dir D] [specs]   re-record goldens (determinism-gated)
`)
}

// discover lists the spec files under dir, sorted for stable output.
func discover(dir string) ([]string, error) {
	var specs []string
	for _, pat := range []string{"*.yaml", "*.yml", "*.json"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return nil, fmt.Errorf("scenario: glob %s: %w", pat, err)
		}
		for _, m := range matches {
			if strings.HasSuffix(m, ".golden.json") {
				continue
			}
			specs = append(specs, m)
		}
	}
	sort.Strings(specs)
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: no specs under %s", dir)
	}
	return specs, nil
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", defaultDir, "spec directory when no specs are named")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	specs := fs.Args()
	if len(specs) == 0 {
		var err error
		if specs, err = discover(*dir); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	exit := 0
	for _, path := range specs {
		spec, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		out, err := scenario.Run(spec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		// The canonical bytes go to stdout verbatim: the determinism gate
		// compares two invocations of this output with cmp.
		if _, err := stdout.Write(out.Canonical()); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if !out.Pass {
			for _, c := range out.FailedChecks() {
				fmt.Fprintf(stderr, "%s: FAIL %s\n", spec.Name, c)
			}
			exit = 1
		}
	}
	return exit
}

func cmdVerifyRecord(args []string, stdout, stderr io.Writer, record bool) int {
	verb := "verify"
	if record {
		verb = "record"
	}
	fs := flag.NewFlagSet(verb, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", defaultDir, "spec directory when no specs are named")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	specs := fs.Args()
	if len(specs) == 0 {
		var err error
		if specs, err = discover(*dir); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	failed := 0
	for _, path := range specs {
		var v *scenario.Verification
		var err error
		if record {
			v, err = scenario.Record(path)
		} else {
			v, err = scenario.Verify(path)
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			failed++
			continue
		}
		failed += report(stdout, verb, path, v)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "scenario %s: %d of %d specs failed\n", verb, failed, len(specs))
		return 1
	}
	return 0
}

// report prints one spec's verification and returns 1 when it failed.
func report(w io.Writer, verb, path string, v *scenario.Verification) int {
	name := v.Outcome.Scenario
	switch {
	case !v.Deterministic:
		fmt.Fprintf(w, "FAIL %s: nondeterministic replay\n%s", name, indent(v.DetDiff))
	case verb == "record":
		fmt.Fprintf(w, "ok   %s: golden written to %s\n", name, v.GoldenPath)
		return 0
	case v.GoldenMissing:
		fmt.Fprintf(w, "FAIL %s: no golden at %s (run `scenario record %s`)\n",
			name, v.GoldenPath, path)
	case !v.GoldenMatch:
		fmt.Fprintf(w, "FAIL %s: outcome diverges from golden (- golden, + replay)\n%s",
			name, indent(v.GoldenDiff))
	case !v.Outcome.Pass:
		fmt.Fprintf(w, "FAIL %s: expectations not met\n", name)
		for _, c := range v.Outcome.FailedChecks() {
			fmt.Fprintf(w, "    %s\n", c)
		}
	default:
		fmt.Fprintf(w, "ok   %s: deterministic, golden matches, %d checks pass\n",
			name, len(v.Outcome.Checks))
		return 0
	}
	return 1
}

func indent(s string) string {
	if s == "" {
		return ""
	}
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}

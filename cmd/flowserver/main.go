// Command flowserver stands up the service plane of the infrastructure on
// real HTTP ports: the orchestration (Prefect-style) stats API populated
// from a simulated production campaign, the SciCat metadata catalog, the
// Tiled array service with a demo volume, and the SFAPI compute facade
// with a registered reconstruction command — the same surfaces the
// beamline web applications talk to.
//
//	flowserver -addr 127.0.0.1:8832 -scans 100
//
// Endpoints (all under the one address):
//
//	/api/flows, /api/flows/{name}/stats, /api/flows/{name}/runs
//	/api/runs/{id}/trace (per-run span tree)
//	/api/datasets (SciCat)
//	/api/volumes  (Tiled)
//	/api/v1/...   (SFAPI; Authorization: Bearer <token>)
//	/metrics      (flow outcome counters, Prometheus text format)
//
// On SIGINT/SIGTERM the server drains: the HTTP listener shuts down
// gracefully, running SFAPI jobs are cancelled, and any flows still in
// flight are reported before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/monitor"
	"repro/internal/phantom"
	"repro/internal/tiled"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowserver: ")

	addr := flag.String("addr", "127.0.0.1:8832", "listen address")
	scans := flag.Int("scans", 100, "simulated campaign size for flow statistics")
	token := flag.String("token", "demo-token", "SFAPI bearer token")
	oneshot := flag.Bool("oneshot", false, "print a status summary and exit (for smoke tests)")
	flag.Parse()

	// One ctx from signal to shutdown: SIGINT/SIGTERM cancels everything
	// hanging off it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Populate the orchestration history from a simulated campaign, with
	// outcome counters flowing into the metrics registry.
	epoch := time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)
	b := core.NewBeamline(epoch, core.DefaultSimConfig())
	metrics := monitor.NewRegistry()
	b.Flows.SetMetrics(metrics)
	res := b.RunProductionCampaign(ctx, *scans, *scans)
	log.Printf("campaign complete: %d scans through both branches", *scans)

	// Metadata catalog was filled by the campaign; add an access-layer
	// demo volume.
	access := tiled.NewServer()
	access.RegisterVolume("demo-shepp", phantom.SheppLogan3D(64, 32), 3)

	// SFAPI facade with a no-op reconstruction command.
	api := facility.NewSFAPI(*token)
	api.Register("streaming_service", func(ctx context.Context, args map[string]string) error {
		select {
		case <-time.After(100 * time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})

	mux := http.NewServeMux()
	mux.Handle("/api/flows", b.Flows.Handler())
	mux.Handle("/api/flows/", b.Flows.Handler())
	mux.Handle("/api/runs/", b.Flows.Handler())
	mux.Handle("/api/datasets", b.Catalog.Handler())
	mux.Handle("/api/datasets/", b.Catalog.Handler())
	mux.Handle("/api/volumes", access.Handler())
	mux.Handle("/api/volumes/", access.Handler())
	mux.Handle("/api/v1/", api.Handler())
	mux.Handle("/metrics", metrics.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, statusText(b, res))
	})

	if *oneshot {
		fmt.Print(statusText(b, res))
		return
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("signal received, draining")
		if n := api.CancelAll(); n > 0 {
			log.Printf("cancelled %d running SFAPI job(s)", n)
		}
		if inflight := b.Flows.InFlight(); len(inflight) > 0 {
			for _, run := range inflight {
				log.Printf("flow still in flight: %s (run %d)", run.Flow, run.ID)
			}
		} else {
			log.Printf("no flows in flight")
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("listening on http://%s/", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("shutdown complete")
}

func statusText(b *core.Beamline, res *core.Table2Result) string {
	var sb strings.Builder
	sb.WriteString("splash-flows service plane\n\n")
	sb.WriteString(core.FormatTable2(res))
	sb.WriteString(fmt.Sprintf("\ncataloged datasets: %d\n", b.Catalog.Count()))
	sb.WriteString(fmt.Sprintf("perlmutter jobs: %d, polaris executions: %d\n",
		len(b.Perlmutter.Jobs()), b.Polaris.Executions))
	return sb.String()
}

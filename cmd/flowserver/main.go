// Command flowserver stands up the service plane of the infrastructure on
// real HTTP ports: the orchestration (Prefect-style) stats API populated
// from a simulated production campaign, the SciCat metadata catalog, the
// Tiled array service with a demo volume, and the SFAPI compute facade
// with a registered reconstruction command — the same surfaces the
// beamline web applications talk to.
//
//	flowserver -addr 127.0.0.1:8832 -scans 100
//
// Endpoints (all under the one address):
//
//	/api/flows, /api/flows/{name}/stats, /api/flows/{name}/runs
//	/api/runs/{id}/trace (per-run span tree)
//	/api/events   (run-correlated event journal; ?run=&level=&component=)
//	/api/slo      (objective attainment, error budgets, burn-rate alerts)
//	/api/datasets (SciCat)
//	/api/volumes  (Tiled)
//	/api/v1/...   (SFAPI; Authorization: Bearer <token>)
//	/api/telemetry (windowed signal series; ?name=&facility=&window=)
//	/api/health   (facility health verdicts, probes, transitions; 503 unless all healthy)
//	/metrics      (flow outcome counters + runtime gauges, Prometheus text)
//	/debug/pprof/ (with -pprof: CPU/heap/goroutine profiling)
//
// On SIGINT/SIGTERM the server drains: the HTTP listener shuts down
// gracefully, running SFAPI jobs are cancelled, and any flows still in
// flight are reported before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/phantom"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tiled"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8832", "listen address")
	scans := flag.Int("scans", 100, "simulated campaign size for flow statistics")
	token := flag.String("token", "demo-token", "SFAPI bearer token")
	oneshot := flag.Bool("oneshot", false, "print a status summary and exit (for smoke tests)")
	journalPath := flag.String("journal", "", "dump the campaign event journal as JSONL to this file")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	beamlines := flag.Int("beamlines", 4, "beamlines in the multi-tenant campaign")
	workers := flag.Int("workers", 4, "scheduler worker-pool size for the campaign")
	reserved := flag.Int("reserved", 1, "workers reserved for the streaming class")
	campaignScans := flag.Int("campaign-scans", 6, "scans per beamline in the multi-tenant campaign")
	schedJournalPath := flag.String("sched-journal", "", "dump the multi-tenant campaign's event journal as JSONL to this file")
	scenarioPath := flag.String("scenario", "", "run this scenario spec as the multi-tenant campaign (outcome served at /api/scenario)")
	telemetryOn := flag.Bool("telemetry", true, "run the facility telemetry plane alongside the multi-tenant campaign")
	telemetryJournalPath := flag.String("telemetry-journal", "", "dump the telemetry verdict timeline and probe digest as JSONL to this file")
	flag.Parse()

	// Operational journal: wall-clocked, text-rendered to stderr — the
	// replacement for stdlib log, with the same journal schema the
	// campaign timeline uses. (The sim journals run on the engine clock;
	// sim.WallClock is the sanctioned bridge to real time.)
	ops := obslog.New(sim.WallClock{}, 1024)
	ops.AddSink(obslog.NewTextSink(os.Stderr))
	opsCtx := obslog.NewContext(context.Background(), ops)
	fatal := func(msg string, fields ...obslog.Field) {
		obslog.Error(opsCtx, "flowserver", msg, fields...)
		os.Exit(1)
	}

	// One ctx from signal to shutdown: SIGINT/SIGTERM cancels everything
	// hanging off it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Populate the orchestration history from a simulated campaign, with
	// outcome counters flowing into the metrics registry.
	epoch := time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)
	b := core.NewBeamline(epoch, core.DefaultSimConfig())
	metrics := monitor.NewRegistry()
	b.Flows.SetMetrics(metrics)
	res := b.RunProductionCampaign(ctx, *scans, *scans)
	obslog.Info(opsCtx, "flowserver", "campaign complete",
		obslog.F("scans", *scans),
		obslog.F("events", b.Journal.Len()))

	// The -journal dump is the determinism gate's artifact: two runs with
	// the same seed must produce byte-identical files.
	if *journalPath != "" {
		f, err := os.Create(*journalPath)
		if err != nil {
			fatal("create journal file", obslog.F("err", err))
		}
		if err := b.Journal.WriteJSONL(f, obslog.Filter{}); err != nil {
			f.Close()
			fatal("write journal", obslog.F("err", err))
		}
		if err := f.Close(); err != nil {
			fatal("close journal file", obslog.F("err", err))
		}
		obslog.Info(opsCtx, "flowserver", "journal written",
			obslog.F("path", *journalPath))
	}

	// The multi-tenant campaign: N beamlines sharing one facility pool
	// under the fair-share, SLO-aware scheduler, with a reprocessing
	// burst so the decision stream exercises defer and shed. Its live
	// report is served at /api/sched.
	var camp *core.Campaign
	var cres *core.CampaignResult
	var scOutcome *scenario.Outcome
	if *scenarioPath != "" {
		// A declared scenario replaces the default campaign: same scheduler
		// and journal surfaces, but the workload, WAN weather, and
		// incidents come from the spec, and the evaluated outcome report is
		// served at /api/scenario.
		spec, err := scenario.Load(*scenarioPath)
		if err != nil {
			fatal("load scenario", obslog.F("err", err))
		}
		runner, err := scenario.NewRunner(spec)
		if err != nil {
			fatal("build scenario", obslog.F("err", err))
		}
		scOutcome, err = runner.Run()
		if err != nil {
			fatal("run scenario", obslog.F("err", err))
		}
		camp = runner.Campaign
		cres = camp.Result()
		obslog.Info(opsCtx, "flowserver", "scenario complete",
			obslog.F("scenario", scOutcome.Scenario),
			obslog.F("pass", scOutcome.Pass),
			obslog.F("checks", len(scOutcome.Checks)),
			obslog.F("deferred", cres.Deferred),
			obslog.F("shed", cres.Shed))
	} else {
		campCfg := core.DefaultCampaignConfig()
		campCfg.Beamlines = *beamlines
		campCfg.Workers = *workers
		campCfg.Reserved = *reserved
		campCfg.Metrics = metrics
		campCfg.BurstAt = 2 * time.Hour
		campCfg.BurstScans = 14
		campCfg.Telemetry = *telemetryOn
		camp = core.NewCampaign(epoch, campCfg)
		cres = camp.Run(*campaignScans)
		obslog.Info(opsCtx, "flowserver", "multi-tenant campaign complete",
			obslog.F("beamlines", cres.Beamlines),
			obslog.F("scans", cres.Scans),
			obslog.F("runs_per_hour", fmt.Sprintf("%.1f", cres.RunsPerHour)),
			obslog.F("streaming_under10s_pct", cres.StreamingUnder10sPct),
			obslog.F("deferred", cres.Deferred),
			obslog.F("shed", cres.Shed))
	}
	// The telemetry timeline dump is the health-plane determinism
	// artifact: verdict transitions plus the probe-series digest, stamped
	// purely from the sim clock, so two seeded runs must be
	// byte-identical.
	if *telemetryJournalPath != "" {
		if camp.Telemetry == nil {
			fatal("telemetry journal requested but the campaign ran without -telemetry")
		}
		f, err := os.Create(*telemetryJournalPath)
		if err != nil {
			fatal("create telemetry journal file", obslog.F("err", err))
		}
		if err := camp.Telemetry.WriteTimeline(f); err != nil {
			f.Close()
			fatal("write telemetry journal", obslog.F("err", err))
		}
		if err := f.Close(); err != nil {
			fatal("close telemetry journal file", obslog.F("err", err))
		}
		obslog.Info(opsCtx, "flowserver", "telemetry journal written",
			obslog.F("path", *telemetryJournalPath))
	}
	if *schedJournalPath != "" {
		f, err := os.Create(*schedJournalPath)
		if err != nil {
			fatal("create sched journal file", obslog.F("err", err))
		}
		if err := camp.Base.Journal.WriteJSONL(f, obslog.Filter{}); err != nil {
			f.Close()
			fatal("write sched journal", obslog.F("err", err))
		}
		if err := f.Close(); err != nil {
			fatal("close sched journal file", obslog.F("err", err))
		}
		obslog.Info(opsCtx, "flowserver", "sched journal written",
			obslog.F("path", *schedJournalPath))
	}

	// Metadata catalog was filled by the campaign; add an access-layer
	// demo volume.
	access := tiled.NewServer()
	access.RegisterVolume("demo-shepp", phantom.SheppLogan3D(64, 32), 3)

	// SFAPI facade with a no-op reconstruction command.
	api := facility.NewSFAPI(*token)
	api.Register("streaming_service", func(ctx context.Context, args map[string]string) error {
		select {
		case <-time.After(100 * time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})

	mux := http.NewServeMux()
	mux.Handle("/api/flows", b.Flows.Handler())
	mux.Handle("/api/flows/", b.Flows.Handler())
	mux.Handle("/api/runs/", b.Flows.Handler())
	mux.Handle("/api/datasets", b.Catalog.Handler())
	mux.Handle("/api/datasets/", b.Catalog.Handler())
	mux.Handle("/api/volumes", access.Handler())
	mux.Handle("/api/volumes/", access.Handler())
	mux.Handle("/api/v1/", api.Handler())
	mux.Handle("/api/events", b.Journal.Handler())
	mux.Handle("/api/slo", b.SLO.Handler())
	mux.Handle("/api/sched", camp.Sched.Handler())
	if camp.Telemetry != nil {
		mux.Handle("/api/telemetry", camp.Telemetry.Handler())
		mux.Handle("/api/health", camp.Telemetry.HealthHandler())
	}
	if scOutcome != nil {
		outcomeJSON := scOutcome.Canonical()
		mux.HandleFunc("/api/scenario", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(outcomeJSON)
		})
	}
	mux.Handle("/metrics", metrics.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		obslog.Info(opsCtx, "flowserver", "pprof enabled",
			obslog.F("path", "/debug/pprof/"))
	}
	status := statusText(b, res, cres)
	if camp.Telemetry != nil {
		var hb strings.Builder
		hb.WriteString("facility health:")
		for _, fh := range camp.Telemetry.Health() {
			fmt.Fprintf(&hb, " %s=%s(%.0f)", fh.Facility, fh.Verdict, fh.Score)
		}
		fmt.Fprintf(&hb, ", %d verdict transitions, probe digest %.12s\n",
			len(camp.Telemetry.Transitions()), camp.Telemetry.ProbeDigest())
		status += hb.String()
	}
	if scOutcome != nil {
		status += fmt.Sprintf("scenario %s: pass=%v, %d checks, journal sha256 %.12s\n",
			scOutcome.Scenario, scOutcome.Pass, len(scOutcome.Checks), scOutcome.Journal.SHA256)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, status)
	})

	if *oneshot {
		fmt.Print(status)
		return
	}

	// Runtime introspection: sample goroutine/heap/GC gauges into the
	// registry so /metrics answers "is the server healthy" at a glance.
	monitor.SampleRuntime(metrics)
	go func() {
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				monitor.SampleRuntime(metrics)
			}
		}
	}()

	srv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		obslog.Info(opsCtx, "flowserver", "signal received, draining")
		if n := api.CancelAll(); n > 0 {
			obslog.Warn(opsCtx, "flowserver", "cancelled running SFAPI jobs",
				obslog.F("jobs", n))
		}
		if inflight := b.Flows.InFlight(); len(inflight) > 0 {
			for _, run := range inflight {
				obslog.Warn(opsCtx, "flowserver", "flow still in flight",
					obslog.F("flow", run.Flow), obslog.F("run", run.ID))
			}
		} else {
			obslog.Info(opsCtx, "flowserver", "no flows in flight")
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			obslog.Error(opsCtx, "flowserver", "shutdown", obslog.F("err", err))
		}
	}()

	obslog.Info(opsCtx, "flowserver", "listening",
		obslog.F("url", "http://"+*addr+"/"))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve", obslog.F("err", err))
	}
	<-done
	obslog.Info(opsCtx, "flowserver", "shutdown complete")
}

func statusText(b *core.Beamline, res *core.Table2Result, cres *core.CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("splash-flows service plane\n\n")
	sb.WriteString(core.FormatTable2(res))
	sb.WriteString(fmt.Sprintf("\ncataloged datasets: %d\n", b.Catalog.Count()))
	sb.WriteString(fmt.Sprintf("perlmutter jobs: %d, polaris executions: %d\n",
		len(b.Perlmutter.Jobs()), b.Polaris.Executions))
	sb.WriteString(fmt.Sprintf(
		"campaign: %d beamlines, %d workers (%d reserved), %d scans, %.1f runs/h, streaming under-10s %.0f%%, deferred %d, shed %d\n",
		cres.Beamlines, cres.Workers, cres.Reserved, cres.Scans, cres.RunsPerHour,
		cres.StreamingUnder10sPct, cres.Deferred, cres.Shed))
	return sb.String()
}

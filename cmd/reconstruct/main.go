// Command reconstruct runs the file-based reconstruction chain on a
// DXchange container: normalize against the embedded flat/dark frames,
// preprocess, find the rotation center, reconstruct every slice in
// parallel, and write a multiscale Zarr pyramid — the same stages the
// paper's TomoPy jobs run at NERSC and ALCF.
//
//	reconstruct -in scan.dxf -out vol.zarr -algorithm gridrec -ring 9
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dxfile"
	"repro/internal/obslog"
	"repro/internal/sim"
	"repro/internal/tiff"
	"repro/internal/tomo"
	"repro/internal/zarr"
)

func main() {
	// Entry points run on real time; sim.WallClock is the sanctioned
	// bridge for stamping their journals.
	journal := obslog.New(sim.WallClock{}, 64)
	journal.AddSink(obslog.NewTextSink(os.Stderr))
	ctx := obslog.NewContext(context.Background(), journal)
	fatal := func(msg string, fields ...obslog.Field) {
		obslog.Error(ctx, "reconstruct", msg, fields...)
		os.Exit(1)
	}

	in := flag.String("in", "", "input DXchange file (required)")
	out := flag.String("out", "", "output Zarr directory (required)")
	algorithm := flag.String("algorithm", "fbp", "fbp|gridrec|sirt|sart")
	filter := flag.String("filter", "shepp", "FBP filter: ramlak|shepp|cosine|hamming|hann")
	iterations := flag.Int("iterations", 30, "iterations for sirt/sart")
	ring := flag.Int("ring", 9, "ring-removal window (0 = off)")
	outlier := flag.Float64("outlier", 0.2, "zinger threshold in transmission units (0 = off)")
	paganin := flag.Float64("paganin", 0, "phase-filter strength (0 = off)")
	autocor := flag.Bool("autocor", true, "estimate center of rotation automatically")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel slice workers")
	chunk := flag.Int("chunk", 32, "zarr chunk edge length")
	tiffDir := flag.String("tiff", "", "also write an ImageJ TIFF stack to this directory")
	flag.Parse()

	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	acq, meta, err := dxfile.ReadDXchange(*in)
	if err != nil {
		fatal("read input", obslog.F("path", *in), obslog.F("err", err))
	}
	obslog.Info(ctx, "reconstruct", "scan loaded",
		obslog.F("scan", meta.ScanID), obslog.F("sample", meta.Sample),
		obslog.F("angles", acq.Raw.NAngles), obslog.F("rows", acq.Raw.NRows),
		obslog.F("cols", acq.Raw.NCols))

	li := tomo.MinusLog(tomo.Normalize(acq.Raw, acq.Flat, acq.Dark))

	opts := tomo.ReconOptions{
		Algorithm:  tomo.Algorithm(*algorithm),
		Iterations: *iterations,
		AutoCOR:    *autocor,
		Workers:    *workers,
		Preprocess: tomo.PreprocessOptions{
			OutlierThreshold: *outlier,
			RingWindow:       *ring,
			PaganinAlpha:     *paganin,
		},
	}
	f, err := tomo.ParseFilter(*filter)
	if err != nil {
		fatal("parse filter", obslog.F("err", err))
	}
	opts.Filter = f
	// The preprocessing chain includes its own -log, so hand it
	// transmission data instead of line integrals when enabled.
	work := li
	if opts.Preprocess != (tomo.PreprocessOptions{}) {
		work = tomo.Normalize(acq.Raw, acq.Flat, acq.Dark)
	}

	t0 := time.Now()
	volume, err := tomo.ReconstructVolume(ctx, work, opts)
	if err != nil {
		fatal("reconstruct", obslog.F("err", err))
	}
	obslog.Info(ctx, "reconstruct", "volume reconstructed",
		obslog.F("slices", volume.D),
		obslog.F("duration", time.Since(t0).Round(time.Millisecond)),
		obslog.F("workers", *workers))

	m, err := zarr.Write(*out, volume, *chunk, 0)
	if err != nil {
		fatal("write zarr", obslog.F("err", err))
	}
	size, _ := zarr.SizeBytes(*out)
	fmt.Printf("wrote %s: %d levels, %.1f MB\n", *out, m.Levels, float64(size)/1e6)
	if *tiffDir != "" {
		if err := tiff.WriteStack(*tiffDir, volume, tiff.F32); err != nil {
			fatal("write tiff", obslog.F("err", err))
		}
		fmt.Printf("wrote %s: %d TIFF slices\n", *tiffDir, volume.D)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"simclock", "wrapcheck", "ctxfirst", "testsleep",
		"lockguard", "lockorder", "nocopy", "hotalloc"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestNegativeContextIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-c", "-1"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "testsleep,ctxfirst", "./internal/leakcheck"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", out.String())
	}
}

// The lockguard fixture is a deliberately broken package: pointing the
// gate at it must produce findings and a nonzero exit, proving the gate
// cannot silently pass a dirty tree.
func TestSeededFixtureExitsNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "lockguard", "./internal/lint/testdata/lockguard"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[lockguard]") {
		t.Fatalf("diagnostics missing lockguard tag:\n%s", out.String())
	}
}

// -json emits exactly one parseable object per diagnostic with the
// canonical fields.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-checks", "hotalloc", "./internal/lint/testdata/hotalloc"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON lines")
	}
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer != "hotalloc" || d.Message == "" {
			t.Fatalf("incomplete diagnostic: %+v", d)
		}
	}
}

// -c prints gutter-marked source context under each text diagnostic.
func TestContextOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-c", "2", "-checks", "nocopy", "./internal/lint/testdata/nocopy"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "> ") {
		t.Fatalf("context output missing finding marker:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "func (b box) value()") {
		t.Fatalf("context output missing fixture source line:\n%s", out.String())
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"simclock", "wrapcheck", "ctxfirst", "testsleep"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-c", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-c", "testsleep,ctxfirst", "./internal/leakcheck"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", out.String())
	}
}

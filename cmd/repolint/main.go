// Command repolint is the repository's own static-analysis gate: a
// stdlib-only driver (go/ast + go/parser + go/types, no module
// dependencies) running the project-specific analyzers in internal/lint.
//
// Usage:
//
//	go run ./cmd/repolint [-list] [-c analyzer[,analyzer...]] [patterns]
//
// Patterns default to ./... relative to the module root, which is found
// by walking up from the working directory. Diagnostics print one per
// line as "file:line:col: [analyzer] message"; the exit status is 0 when
// clean, 1 when any diagnostic fired, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	checks := fs.String("c", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(stderr, "repolint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	diags, err := lint.LoadAndRun(root, fs.Args(), analyzers, lint.DefaultConfig())
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

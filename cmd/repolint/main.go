// Command repolint is the repository's own static-analysis gate: a
// stdlib-only driver (go/ast + go/parser + go/types, no module
// dependencies) running the project-specific analyzers in internal/lint.
//
// Usage:
//
//	go run ./cmd/repolint [-list] [-json] [-c n] [-checks a[,b...]] [patterns]
//
// Patterns default to ./... relative to the module root, which is found
// by walking up from the working directory. Diagnostics print one per
// line as "file:line:col: [analyzer] message"; -json switches to one
// JSON object per line (machine-readable, stable field order), and -c n
// prints n lines of source context around each finding. The exit status
// is 0 when clean, 1 when any diagnostic fired, 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the machine-readable form one -json line carries.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit one JSON object per diagnostic instead of text")
	context := fs.Int("c", 0, "print n lines of source context around each diagnostic")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *context < 0 {
		fmt.Fprintf(stderr, "repolint: -c must be non-negative\n")
		return 2
	}
	analyzers := lint.All
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(stderr, "repolint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	diags, err := lint.LoadAndRun(root, fs.Args(), analyzers, lint.DefaultConfig())
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if *asJSON {
			if err := enc.Encode(jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(stderr, "repolint: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, d)
		if *context > 0 {
			printContext(stdout, d, *context)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// printContext prints n lines around the diagnostic line, gutter-marked
// with the line number and a ">" on the finding itself.
func printContext(w io.Writer, d lint.Diagnostic, n int) {
	raw, err := os.ReadFile(d.Pos.Filename)
	if err != nil {
		return // context is best-effort; the diagnostic already printed
	}
	lines := strings.Split(string(raw), "\n")
	lo := d.Pos.Line - n
	if lo < 1 {
		lo = 1
	}
	hi := d.Pos.Line + n
	if hi > len(lines) {
		hi = len(lines)
	}
	for i := lo; i <= hi; i++ {
		mark := " "
		if i == d.Pos.Line {
			mark = ">"
		}
		fmt.Fprintf(w, "  %s %4d | %s\n", mark, i, lines[i-1])
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// Case study 1 (§5.1.1): feather morphology comparison. Scans a chicken
// and a sandgrouse feather phantom through the full pipeline and compares
// the reconstructed microstructures — the sandgrouse's coiled barbules
// enclose far more near-keratin void (its desert water-storage
// adaptation), which the water-storage index makes quantitative. The
// mount → scan → reconstruct → compare loop the paper says now takes
// 20 minutes runs here in seconds at laptop scale.
//
//	go run ./examples/feather
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/phantom"
	"repro/internal/tomo"
)

func main() {
	log.SetFlags(0)

	type result struct {
		species phantom.FeatherSpecies
		index   float64
		elapsed time.Duration
	}
	var results []result

	for _, species := range []phantom.FeatherSpecies{phantom.Chicken, phantom.Sandgrouse} {
		t0 := time.Now()
		truth := phantom.Feather(phantom.DefaultFeather(species), 64, 24)
		res, err := core.RunScanPipeline(context.Background(),
			"feather-"+species.String(), truth, tomo.UniformAngles(96),
			tomo.AcquireOptions{I0: 5e4, Seed: 42},
			core.PipelineOptions{
				Recon: tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter},
			})
		if err != nil {
			log.Fatal(err)
		}
		// CoilSpreadIndex is robust to reconstruction blur; the
		// water-storage index on the ground truth confirms the same
		// ordering.
		idx := phantom.CoilSpreadIndex(res.Volume, 0.5)
		wsi := phantom.WaterStorageIndex(truth, 0.5)
		results = append(results, result{species, idx, time.Since(t0)})
		fmt.Printf("%-11s reconstructed in %-8v coil-spread %.3f (truth water-storage %.4f)\n",
			species, time.Since(t0).Round(time.Millisecond), idx, wsi)
	}

	if !(results[1].index > results[0].index) {
		log.Fatalf("expected sandgrouse (%.4f) > chicken (%.4f): coiled barbules spread across slices",
			results[1].index, results[0].index)
	}
	fmt.Printf("\nmorphological contrast: sandgrouse/chicken coil spread = %.2f×\n",
		results[1].index/results[0].index)
	fmt.Println("the sandgrouse's coiled barbule structure — its desert adaptation — is")
	fmt.Println("immediately visible in the reconstructions, as in the paper's Figure 1.")
}

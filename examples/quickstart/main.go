// Quickstart: scan a phantom, run the file-based pipeline, and inspect the
// result — the smallest end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/phantom"
	"repro/internal/scicat"
	"repro/internal/stats"
	"repro/internal/tomo"
)

func main() {
	log.SetFlags(0)

	// 1. A sample on the stage: the Shepp-Logan head phantom.
	truth := phantom.SheppLogan3D(64, 16)

	// 2. Acquire 128 projections over 180° with a realistic detector
	//    model (photon noise, gain rings, dark current).
	theta := tomo.UniformAngles(128)
	acqOpts := tomo.AcquireOptions{I0: 3e4, GainVariation: 0.02, DarkLevel: 40, Seed: 1}

	// 3. Run the full file-based branch: DXchange file → normalize →
	//    parallel reconstruction → multiscale Zarr → catalog ingest.
	catalog := scicat.New()
	res, err := core.RunScanPipeline(context.Background(), "quickstart-001",
		truth, theta, acqOpts, core.PipelineOptions{
			Recon:   tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter, AutoCOR: true},
			Catalog: catalog,
		})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect: reconstruction quality against the known ground truth.
	mid := truth.D / 2
	corr := stats.Pearson(res.Volume.Slice(mid).Pix, truth.Slice(mid).Pix)
	fmt.Printf("scan %s cataloged as %s\n", res.ScanID, res.PID)
	fmt.Printf("raw file:   %s (%.1f MB)\n", res.RawPath, float64(res.RawBytes)/1e6)
	fmt.Printf("zarr store: %s (%.1f MB)\n", res.ZarrPath, float64(res.ZarrBytes)/1e6)
	fmt.Printf("stages: acquire %v, write %v, reconstruct %v, outputs %v\n",
		res.AcquireDur, res.WriteDur, res.ReconDur, res.OutputDur)
	fmt.Printf("central-slice correlation with ground truth: %.3f\n", corr)
	if corr < 0.8 {
		log.Fatal("reconstruction quality below expectation")
	}
	fmt.Println("ok")
}

// Time-resolved (4D) demo — the paper's first future direction (§6):
// "supporting time-resolved experiments by extending our workflow to
// handle 4D datasets as sequences of time-stamped volumes." An in-situ
// propped-fracture creep experiment (the scenario of the paper's cited
// shale studies) is scanned at several timesteps while the fracture
// closes; each timestep reconstructs through the standard pipeline and
// the series reduces to the physical observable — solid fraction rising
// as the aperture collapses.
//
//	go run ./examples/timeresolved
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/phantom"
	"repro/internal/tomo"
	"repro/internal/vol"
)

func main() {
	log.SetFlags(0)

	const steps = 6
	evolve := func(t float64) *vol.Volume {
		p := phantom.DefaultProppant()
		p.FractureW = 0.24 - 0.16*t // aperture closes under load
		return phantom.Proppant(p, 48, 16)
	}

	theta := tomo.UniformAngles(64)
	acqs := core.Acquire4D(evolve, steps, theta, tomo.AcquireOptions{I0: 5e4, Seed: 31})
	stamps := make([]time.Time, steps)
	start := time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)
	for i := range stamps {
		stamps[i] = start.Add(time.Duration(i) * 15 * time.Minute)
	}

	t0 := time.Now()
	ts, err := core.Reconstruct4D(context.Background(), "creep-insitu", acqs, stamps,
		tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter})
	if err != nil {
		log.Fatal(err)
	}

	solid := ts.Metric(func(v *vol.Volume) float64 { return v.FractionAbove(0.25) })
	fmt.Printf("%-22s %-10s %s\n", "timestamp", "recon ms", "solid fraction")
	for i, s := range ts.Steps {
		fmt.Printf("%-22s %-10.1f %.4f\n",
			s.Time.Format("2006-01-02 15:04"), s.ReconMS, solid[i])
	}
	fmt.Printf("\n%d timesteps reconstructed in %v total\n", steps, time.Since(t0).Round(time.Millisecond))
	if solid[steps-1] <= solid[0] {
		log.Fatal("expected solid fraction to rise as the fracture closes")
	}
	fmt.Printf("fracture closure signal: solid fraction %.3f → %.3f as aperture collapses\n",
		solid[0], solid[steps-1])
}

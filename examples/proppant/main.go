// Case study 2 (§5.1.2): fracking proppant retrospective. A 2020-style
// micro-CT dataset of a propped shale fracture is "archived" to the HPSS
// tier, recalled, reprocessed with the current pipeline, and segmented —
// grains vs fracture void vs matrix — the reanalysis-and-communication
// workflow the paper demonstrates with VR.
//
//	go run ./examples/proppant
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/phantom"
	"repro/internal/sim"
	"repro/internal/tomo"
)

func main() {
	log.SetFlags(0)

	// --- The archival side: the 2020 dataset lives on tape. -----------
	epoch := time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)
	b := core.NewBeamline(epoch, core.DefaultSimConfig())
	var recallDur time.Duration
	b.Engine.Go("recall", func(p *sim.Proc) {
		// The 2020 scan was archived long ago.
		if err := b.HPSS.Put(p, "archive/prop_2020.tar", 25e9, "sha256:prop2020"); err != nil {
			log.Fatal(err)
		}
		// Recall from tape to CFS for reprocessing (tape mount latency
		// dominates).
		t0 := p.Now()
		f, err := b.HPSS.Get(p, "archive/prop_2020.tar")
		if err != nil {
			log.Fatal(err)
		}
		if err := b.CFS.Put(p, "staging/prop_2020.h5", f.Size, f.Checksum); err != nil {
			log.Fatal(err)
		}
		recallDur = p.Now().Sub(t0)
	})
	b.Engine.Run()
	fmt.Printf("tape recall of 25 GB archive: %v (mount latency + read)\n",
		recallDur.Round(time.Second))

	// --- The reprocessing side: reconstruct and segment for real. -----
	truth := phantom.Proppant(phantom.DefaultProppant(), 64, 24)
	res, err := core.RunScanPipeline(context.Background(), "prop-2020-reproc",
		truth, tomo.UniformAngles(96), tomo.AcquireOptions{I0: 5e4, Seed: 2020},
		core.PipelineOptions{
			Recon: tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter},
		})
	if err != nil {
		log.Fatal(err)
	}

	// Segmentation: three phases by attenuation.
	p := phantom.DefaultProppant()
	grainThresh := (p.ShaleDens*1.1 + p.GrainDens) / 2
	grains := res.Volume.FractionAbove(grainThresh)
	solid := res.Volume.FractionAbove(p.ShaleDens / 2)
	voidFrac := 1 - solid
	fmt.Printf("reconstructed %dx%dx%d volume in %v\n",
		res.Volume.W, res.Volume.H, res.Volume.D, res.ReconDur.Round(time.Millisecond))
	fmt.Printf("segmentation: proppant grains %.1f%%, solid %.1f%%, fracture+pore void %.1f%%\n",
		grains*100, solid*100, voidFrac*100)

	truthGrains := truth.FractionAbove(grainThresh)
	fmt.Printf("ground-truth grain fraction %.1f%% (reconstruction error %.1f pp)\n",
		truthGrains*100, (grains-truthGrains)*100)
	if grains <= 0 {
		log.Fatal("segmentation found no proppant grains")
	}
	fmt.Println("\nthe segmented grain pack bridging the fracture is what visitors explored")
	fmt.Println("in VR on a Meta Quest 3 during the tour the paper describes.")
}

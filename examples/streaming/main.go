// Streaming-branch demo: the full real-time topology of the paper's
// Figure 3 left branch — detector IOC → PVA mirror → remote streaming
// service (in-memory frame cache + FBP) → three-slice preview back over
// the message queue — with per-scan latency printed for several scans in
// a row, as during a beamtime shift.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/msgq"
	"repro/internal/phantom"
	"repro/internal/pva"
	"repro/internal/tomo"
	"repro/internal/vol"
)

func main() {
	log.SetFlags(0)

	// Beamline acquisition layer: detector IOC and its mirror server.
	ioc, err := pva.NewServer("127.0.0.1:0", 8192)
	must(err)
	defer ioc.Close()
	mirrorSrv, err := pva.NewServer("127.0.0.1:0", 8192)
	must(err)
	defer mirrorSrv.Close()
	mirror, err := pva.NewMirror(ioc.Addr(), "bl832:det", mirrorSrv)
	must(err)
	go mirror.Run()

	// Beamline preview sink (what ImageJ displays within 10 s in the
	// paper).
	sink, err := msgq.NewPull("127.0.0.1:0")
	must(err)
	defer sink.Close()

	// "NERSC" side: the streaming service subscribes to the mirror.
	svc := &core.StreamingService{
		PVAAddr: mirrorSrv.Addr(), Channel: "bl832:det", PreviewAddr: sink.Addr(),
		Recon: tomo.ReconOptions{Algorithm: tomo.AlgFBP, Filter: tomo.SheppLoganFilter},
	}
	go svc.Run(context.Background())
	waitMonitors(mirrorSrv, "bl832:det")
	waitMonitors(ioc, "bl832:det")

	scans := []string{"shepp", "feather", "proppant"}
	for i, name := range scans {
		truth := sampleVolume(name)
		theta := tomo.UniformAngles(64)
		acq := tomo.Acquire(truth, theta, truth.W, tomo.AcquireOptions{I0: 4e4, Seed: int64(i + 1)})
		scanID := fmt.Sprintf("shift_%02d_%s", i+1, name)

		must(core.PublishAcquisition(ioc, "bl832:det", scanID, acq, 0))
		msg, err := sink.Recv(60 * time.Second)
		must(err)
		h, slices, err := core.DecodePreview(msg)
		must(err)
		lo, hi := slices[0].MinMax()
		fmt.Printf("%-22s %3d angles  preview in %7.1f ms  central slice [%.3f, %.3f]  missed %d\n",
			h.ScanID, h.NAngles, h.LatencyMS, lo, hi, h.Missed)
	}
	fmt.Printf("\n%d scans previewed; the paper's production service does the same for\n", len(scans))
	fmt.Println("~20 GB scans in under 10 s on a 4-GPU Perlmutter node.")
}

func sampleVolume(name string) *vol.Volume {
	switch name {
	case "feather":
		return phantom.Feather(phantom.DefaultFeather(phantom.Sandgrouse), 48, 12)
	case "proppant":
		return phantom.Proppant(phantom.DefaultProppant(), 48, 12)
	default:
		return phantom.SheppLogan3D(48, 12)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitMonitors(srv *pva.Server, channel string) {
	deadline := time.Now().Add(5 * time.Second)
	for srv.Monitors(channel) < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}
